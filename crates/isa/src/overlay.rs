//! Granule-based speculative store overlay.
//!
//! [`StoreOverlay`] is the "runahead cache" of the Vector Runahead
//! paper: speculative stores land here instead of in [`Memory`], and
//! later speculative loads observe them (store-to-load forwarding
//! inside the runahead interval).
//!
//! # Why not a byte map?
//!
//! The original implementation was a `HashMap<u64, u8>` keyed by byte
//! address: one hash probe per stored byte, one per loaded byte, a
//! rehash whenever the map grew, and an O(len) `clear()`. Every vector
//! lane clears (and used to clone) an overlay per episode, so the
//! overlay sat squarely on the simulator's hot path.
//!
//! This version stores 8-byte *granules* in an open-addressed table:
//!
//! - key = `addr >> 3` (the granule index), probed with a Fibonacci
//!   multiplicative hash and linear probing;
//! - each slot holds 8 data bytes plus a byte-valid `mask`, so an
//!   aligned 8-byte store or load touches exactly one slot;
//! - a *generation counter* stamps slots: a slot is live only when its
//!   `gen` matches the table's. [`StoreOverlay::clear`] just bumps the
//!   generation — O(1), no memory traffic — and capacity is retained
//!   across episodes, so steady-state use never allocates;
//! - entries are never individually deleted (only bulk-cleared), which
//!   keeps linear probing correct without tombstones.
//!
//! # Semantics
//!
//! Byte-exact with the old map: a store overlays `size` bytes of the
//! little-endian `value` starting at `addr` (per-byte wrapping
//! addresses, exactly like the old loop); a load reads each byte from
//! the overlay if overlaid, else from backing memory; [`len`] counts
//! *overlaid bytes* (not granules), matching `HashMap::len` of the old
//! representation. `crates/isa/tests/overlay_diff.rs` checks this
//! byte-for-byte against a reference byte-map model over randomized
//! mixed-width, overlapping, granule-straddling sequences.
//!
//! [`len`]: StoreOverlay::len

use crate::mem::Memory;

/// One open-addressed table slot: an 8-byte granule with a byte-valid
/// mask and a generation stamp. `gen != table.gen` means "free".
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Granule index (`addr >> 3`).
    key: u64,
    /// The 8 data bytes of the granule (only `mask` bits are valid).
    data: [u8; 8],
    /// Bit `b` set ⇒ byte `b` of the granule is overlaid.
    mask: u8,
    /// Generation stamp; live iff equal to the table's generation.
    gen: u32,
}

const EMPTY: Slot = Slot { key: 0, data: [0; 8], mask: 0, gen: 0 };

/// Initial table capacity (slots). Must be a power of two.
const INITIAL_CAP: usize = 64;

/// Byte-granular (granule-backed) store buffer used by speculative
/// stepping. See the [module docs](self) for the design.
#[derive(Clone, Debug)]
pub struct StoreOverlay {
    slots: Vec<Slot>,
    /// Power-of-two slot count minus one (probe mask).
    cap_mask: usize,
    /// Current generation; slots with a different stamp are free.
    gen: u32,
    /// Distinct granules live this generation (for the load factor).
    live_slots: usize,
    /// Distinct overlaid bytes live this generation ([`Self::len`]).
    live_bytes: usize,
}

impl Default for StoreOverlay {
    fn default() -> StoreOverlay {
        StoreOverlay::new()
    }
}

/// Fibonacci multiplicative hash of a granule index, reduced to a
/// table slot. Granule keys are usually small sequential integers;
/// multiplying by 2^64/φ spreads them across the high bits.
#[inline]
fn slot_of(key: u64, cap_mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & cap_mask
}

impl StoreOverlay {
    /// Creates an empty overlay.
    pub fn new() -> StoreOverlay {
        StoreOverlay {
            slots: vec![EMPTY; INITIAL_CAP],
            cap_mask: INITIAL_CAP - 1,
            // Start at 1 so freshly zeroed slots are not live.
            gen: 1,
            live_slots: 0,
            live_bytes: 0,
        }
    }

    /// Number of overlaid bytes (distinct byte addresses stored this
    /// generation), matching the old byte-map `len()`.
    pub fn len(&self) -> usize {
        self.live_bytes
    }

    /// Whether the overlay holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.live_bytes == 0
    }

    /// Discards all overlaid bytes in O(1) by bumping the generation.
    /// Capacity is retained, so subsequent stores reuse the table
    /// without allocating.
    pub fn clear(&mut self) {
        if self.gen == u32::MAX {
            // Generation wrap: physically wipe once every 2^32 - 1
            // clears so stale stamps can never collide with a reused
            // generation.
            self.slots.fill(EMPTY);
            self.gen = 0;
        }
        self.gen += 1;
        self.live_slots = 0;
        self.live_bytes = 0;
    }

    /// Replaces `self`'s contents with a copy of `other`, reusing
    /// `self`'s capacity — the allocation-free replacement for
    /// `*self = other.clone()` on the episode hot path.
    pub fn copy_from(&mut self, other: &StoreOverlay) {
        self.clear();
        for s in &other.slots {
            if s.gen == other.gen && s.mask != 0 {
                self.slot_store(s.key, s.mask, s.data);
            }
        }
    }

    /// Folds `other`'s overlaid bytes into `self` *without* clearing:
    /// where both overlays cover a byte, `other` wins. Equivalent to
    /// replaying every store captured in `other` on top of `self` —
    /// the commit step of a layered (base + per-lane delta) overlay
    /// scheme, where a surviving lane's delta is merged back into the
    /// shared base instead of the base being rebuilt from a full
    /// per-lane copy.
    pub fn merge_from(&mut self, other: &StoreOverlay) {
        for s in &other.slots {
            if s.gen == other.gen && s.mask != 0 {
                self.slot_store(s.key, s.mask, s.data);
            }
        }
    }

    /// The live `(mask, data)` of granule `addr >> 3`, or `(0, ..)`
    /// when the granule is not overlaid. One probe per *granule* — the
    /// batched lookup primitive behind [`Self::load_layered`]: callers
    /// sweeping K lanes resolve each lane's granule with single-probe
    /// calls instead of per-byte probing.
    #[inline]
    pub fn probe_granule(&self, addr: u64) -> (u8, [u8; 8]) {
        match self.probe_find(addr >> 3) {
            Some(s) => (s.mask, s.data),
            None => (0, [0; 8]),
        }
    }

    /// Layered load: `size` bytes at `addr` where `self` is a sparse
    /// *delta* overlay stacked on a shared `base` overlay stacked on
    /// backing memory. Per byte: the delta wins, then the base, then
    /// `mem` — byte-exact with first merging `base` into a copy of
    /// `self`'s underlay and loading from the merged overlay, but with
    /// one probe per granule per layer and no copy.
    pub fn load_layered(&self, base: &StoreOverlay, mem: &Memory, addr: u64, size: u64) -> u64 {
        let off = (addr & 7) as usize;
        if off + size as usize <= 8 {
            // Single-granule access (every naturally aligned load):
            // two probes decide the whole window at once.
            let window = (((1u16 << size) - 1) as u8) << off;
            let (dmask, ddata) = self.probe_granule(addr);
            let (bmask, bdata) = base.probe_granule(addr);
            if (dmask | bmask) & window == 0 {
                // No overlaid byte in range: one backing-memory read
                // instead of a per-byte fallback loop.
                return mem.read(addr, size);
            }
            if dmask & window == window {
                // The delta covers the whole window.
                let mut out = [0u8; 8];
                out[..size as usize].copy_from_slice(&ddata[off..off + size as usize]);
                return u64::from_le_bytes(out);
            }
            let mut out = [0u8; 8];
            for k in 0..size as usize {
                let bit = 1u8 << (off + k);
                out[k] = if dmask & bit != 0 {
                    ddata[off + k]
                } else if bmask & bit != 0 {
                    bdata[off + k]
                } else {
                    (mem.read(addr.wrapping_add(k as u64), 1) & 0xff) as u8
                };
            }
            return u64::from_le_bytes(out);
        }
        let mut out = [0u8; 8];
        let size = size as usize;
        let mut i = 0;
        while i < size {
            let a = addr.wrapping_add(i as u64);
            let off = (a & 7) as usize;
            let n = (8 - off).min(size - i);
            let (dmask, ddata) = self.probe_granule(a);
            let (bmask, bdata) = base.probe_granule(a);
            for k in 0..n {
                let bit = 1u8 << (off + k);
                out[i + k] = if dmask & bit != 0 {
                    ddata[off + k]
                } else if bmask & bit != 0 {
                    bdata[off + k]
                } else {
                    (mem.read(a.wrapping_add(k as u64), 1) & 0xff) as u8
                };
            }
            i += n;
        }
        u64::from_le_bytes(out)
    }

    /// Finds the live slot for `key`, if any.
    #[inline]
    fn probe_find(&self, key: u64) -> Option<&Slot> {
        let mut i = slot_of(key, self.cap_mask);
        loop {
            let s = &self.slots[i];
            if s.gen != self.gen {
                return None; // free slot terminates the probe chain
            }
            if s.key == key {
                return Some(s);
            }
            i = (i + 1) & self.cap_mask;
        }
    }

    /// Merges `mask`-selected bytes of `data` into the granule `key`,
    /// inserting the granule if absent and growing the table if the
    /// load factor would exceed 3/4.
    fn slot_store(&mut self, key: u64, mask: u8, data: [u8; 8]) {
        if (self.live_slots + 1) * 4 > (self.cap_mask + 1) * 3 {
            self.grow();
        }
        let mut i = slot_of(key, self.cap_mask);
        loop {
            let s = &mut self.slots[i];
            if s.gen != self.gen {
                // Claim a free slot.
                *s = Slot { key, data, mask, gen: self.gen };
                self.live_slots += 1;
                self.live_bytes += mask.count_ones() as usize;
                return;
            }
            if s.key == key {
                self.live_bytes += (mask & !s.mask).count_ones() as usize;
                s.mask |= mask;
                for (b, &d) in data.iter().enumerate() {
                    if mask & (1 << b) != 0 {
                        s.data[b] = d;
                    }
                }
                return;
            }
            i = (i + 1) & self.cap_mask;
        }
    }

    /// Doubles the table, re-inserting live slots. Amortized into the
    /// warmup phase: once an overlay has seen its working set the
    /// table never grows again (capacity survives [`clear`]).
    ///
    /// [`clear`]: StoreOverlay::clear
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.cap_mask + 1) * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        self.cap_mask = new_cap - 1;
        let gen = self.gen;
        for s in old {
            if s.gen == gen && s.mask != 0 {
                // Re-insert without the occupancy check (the new table
                // is at most 3/8 full) and without touching the byte
                // count (keys are unique in the old table).
                let mut i = slot_of(s.key, self.cap_mask);
                while self.slots[i].gen == gen {
                    i = (i + 1) & self.cap_mask;
                }
                self.slots[i] = s;
            }
        }
    }

    /// Overlays `size` bytes of the little-endian `value` at `addr`
    /// (per-byte wrapping addressing, byte-exact with the historical
    /// byte-map implementation).
    pub fn store(&mut self, addr: u64, size: u64, value: u64) {
        let le = value.to_le_bytes();
        let size = size as usize;
        let mut i = 0;
        while i < size {
            let a = addr.wrapping_add(i as u64);
            let off = (a & 7) as usize;
            let n = (8 - off).min(size - i);
            let mut data = [0u8; 8];
            let mut mask = 0u8;
            for k in 0..n {
                data[off + k] = le[i + k];
                mask |= 1 << (off + k);
            }
            self.slot_store(a >> 3, mask, data);
            i += n;
        }
    }

    /// Loads `size` bytes at `addr`: overlaid bytes come from the
    /// overlay, the rest from `mem` (one byte at a time, exactly like
    /// the historical implementation).
    pub fn load(&self, mem: &Memory, addr: u64, size: u64) -> u64 {
        let mut out = [0u8; 8];
        let size = size as usize;
        let mut i = 0;
        while i < size {
            let a = addr.wrapping_add(i as u64);
            let off = (a & 7) as usize;
            let n = (8 - off).min(size - i);
            let slot = self.probe_find(a >> 3);
            for k in 0..n {
                out[i + k] = match slot {
                    Some(s) if s.mask & (1 << (off + k)) != 0 => s.data[off + k],
                    _ => (mem.read(a.wrapping_add(k as u64), 1) & 0xff) as u8,
                };
            }
            i += n;
        }
        u64::from_le_bytes(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_load_roundtrip() {
        let mem = Memory::new();
        let mut ov = StoreOverlay::new();
        ov.store(0x1000, 8, 0x1122_3344_5566_7788);
        assert_eq!(ov.load(&mem, 0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(ov.len(), 8);
    }

    #[test]
    fn straddle_and_partial_overlap() {
        let mut mem = Memory::new();
        mem.write(0x0ff8, 8, 0xAAAA_AAAA_AAAA_AAAA);
        mem.write(0x1000, 8, 0xBBBB_BBBB_BBBB_BBBB);
        let mut ov = StoreOverlay::new();
        // 4-byte store straddling the 0x1000 granule boundary.
        ov.store(0x0ffe, 4, 0x1234_5678);
        assert_eq!(ov.len(), 4);
        assert_eq!(ov.load(&mem, 0x0ffe, 4), 0x1234_5678);
        // Bytes outside the overlay come from memory.
        assert_eq!(ov.load(&mem, 0x0ffc, 2), 0xAAAA);
        assert_eq!(ov.load(&mem, 0x1002, 2), 0xBBBB);
        // Mixed: one overlaid byte, one memory byte.
        assert_eq!(ov.load(&mem, 0x1001, 2), 0xBB12);
    }

    #[test]
    fn clear_is_logical_and_capacity_is_reused() {
        let mem = Memory::new();
        let mut ov = StoreOverlay::new();
        for i in 0..1000u64 {
            ov.store(0x2000 + i * 8, 8, i);
        }
        let cap = ov.slots.len();
        ov.clear();
        assert!(ov.is_empty());
        assert_eq!(ov.len(), 0);
        assert_eq!(ov.load(&mem, 0x2000, 8), 0, "cleared bytes read memory");
        for i in 0..1000u64 {
            ov.store(0x2000 + i * 8, 8, i + 7);
        }
        assert_eq!(ov.slots.len(), cap, "clear must retain capacity");
        assert_eq!(ov.load(&mem, 0x2010, 8), 9);
    }

    #[test]
    fn copy_from_matches_clone() {
        let mem = Memory::new();
        let mut src = StoreOverlay::new();
        for i in 0..100u64 {
            src.store(0x40 + i * 3, 2, i * 0x101);
        }
        let mut dst = StoreOverlay::new();
        dst.store(0x9999, 8, u64::MAX); // pre-existing junk
        dst.copy_from(&src);
        assert_eq!(dst.len(), src.len());
        for i in 0..100u64 {
            let a = 0x40 + i * 3;
            assert_eq!(dst.load(&mem, a, 2), src.load(&mem, a, 2));
        }
        assert_eq!(dst.load(&mem, 0x9999, 8), 0, "junk must not survive");
    }

    #[test]
    fn wrapping_addresses() {
        let mem = Memory::new();
        let mut ov = StoreOverlay::new();
        ov.store(u64::MAX, 2, 0xBEEF);
        assert_eq!(ov.len(), 2);
        assert_eq!(ov.load(&mem, u64::MAX, 1), 0xEF);
        assert_eq!(ov.load(&mem, 0, 1), 0xBE);
        assert_eq!(ov.load(&mem, u64::MAX, 2), 0xBEEF);
    }
}
