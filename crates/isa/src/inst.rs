//! Instruction definitions and static dataflow queries.

use core::fmt;

use crate::reg::{FReg, Reg, RegRef};

/// Memory access width in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl Width {
    /// Access size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Width::B => 1,
            Width::H => 2,
            Width::W => 4,
            Width::D => 8,
        }
    }
}

/// Operation of an [`Inst`].
///
/// Field conventions (see [`Inst`]): `rd` is the destination, `rs1` and
/// `rs2` are sources, `imm` is a 64-bit immediate whose meaning is
/// per-op (arithmetic immediate, address displacement, or absolute
/// branch target instruction index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,

    // ---- integer register-register: rd = rs1 <op> rs2 ----
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply (low 64 bits).
    Mul,
    /// Unsigned divide; division by zero yields `u64::MAX` (RISC-V
    /// semantics).
    Divu,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `rs2 & 63`.
    Sll,
    /// Logical shift right by `rs2 & 63`.
    Srl,
    /// Arithmetic shift right by `rs2 & 63`.
    Sra,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Signed minimum (convenience op used by graph kernels).
    Min,
    /// Unsigned minimum.
    Minu,

    // ---- integer register-immediate: rd = rs1 <op> imm ----
    /// Wrapping add immediate.
    Addi,
    /// Bitwise AND immediate.
    Andi,
    /// Bitwise OR immediate.
    Ori,
    /// Bitwise XOR immediate.
    Xori,
    /// Logical shift left by `imm & 63`.
    Slli,
    /// Logical shift right by `imm & 63`.
    Srli,
    /// Arithmetic shift right by `imm & 63`.
    Srai,
    /// Signed set-less-than immediate.
    Slti,
    /// Unsigned set-less-than immediate.
    Sltiu,
    /// Load 64-bit immediate: rd = imm.
    Li,

    // ---- memory ----
    /// Zero-extending load: rd = mem[x\[rs1\] + imm].
    Ld(Width),
    /// Store: mem[x\[rs1\] + imm] = x\[rs2\].
    St(Width),
    /// Floating-point load (8 bytes): fd = mem[x\[rs1\] + imm].
    Fld,
    /// Floating-point store (8 bytes): mem[x\[rs1\] + imm] = f\[fs2\].
    Fst,

    // ---- floating point: fd = fs1 <op> fs2 ----
    /// FP add.
    Fadd,
    /// FP subtract.
    Fsub,
    /// FP multiply.
    Fmul,
    /// FP divide.
    Fdiv,
    /// Convert unsigned integer x\[rs1\] to f64 fd.
    Fcvt,
    /// Truncate f64 f\[fs1\] to unsigned integer rd.
    Fcvti,
    /// Set rd = 1 if f\[fs1\] < f\[fs2\], else 0.
    Flt,
    /// Set rd = 1 if f\[fs1\] == f\[fs2\], else 0.
    Feq,

    // ---- control flow; imm = absolute target instruction index ----
    /// Branch if equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Signed less-than branch.
    Blt,
    /// Signed greater-or-equal branch.
    Bge,
    /// Unsigned less-than branch.
    Bltu,
    /// Unsigned greater-or-equal branch.
    Bgeu,
    /// Unconditional jump; rd = pc + 1 (link), pc = imm.
    Jal,
    /// Indirect jump; rd = pc + 1 (link), pc = x\[rs1\] + imm.
    Jalr,
}

/// Functional-unit class an instruction executes on; consumed by the
/// timing model's issue logic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Simple integer ALU (adds, logic, shifts, compares).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/sub/convert/compare.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Memory load (integer or fp).
    Load,
    /// Memory store (integer or fp).
    Store,
    /// Conditional or unconditional control flow.
    Branch,
    /// No functional unit required (nop, halt).
    None,
}

/// One machine instruction.
///
/// A flat four-field record: the operation plus up to one destination,
/// two register sources, and one immediate. Whether `rd`/`rs1`/`rs2`
/// name the integer or floating-point file is determined by the op
/// (see [`Inst::dst`] and [`Inst::srcs`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Destination register index.
    pub rd: u8,
    /// First source register index.
    pub rs1: u8,
    /// Second source register index.
    pub rs2: u8,
    /// Immediate operand (op-specific meaning).
    pub imm: i64,
}

impl Inst {
    /// A canonical no-op.
    pub const NOP: Inst = Inst { op: Op::Nop, rd: 0, rs1: 0, rs2: 0, imm: 0 };

    /// Destination register, if the instruction writes one.
    ///
    /// Writes to the hardwired zero register are reported as `None`.
    pub fn dst(&self) -> Option<RegRef> {
        use Op::*;
        let int_dst = |r: u8| {
            let reg = Reg::new(r);
            (!reg.is_zero()).then_some(RegRef::Int(reg))
        };
        match self.op {
            Nop | Halt | St(_) | Fst | Beq | Bne | Blt | Bge | Bltu | Bgeu => None,
            Fld | Fadd | Fsub | Fmul | Fdiv | Fcvt => Some(RegRef::Fp(FReg::new(self.rd))),
            Jal | Jalr => int_dst(self.rd),
            _ => int_dst(self.rd),
        }
    }

    /// Source registers read by the instruction (at most two).
    ///
    /// Reads of the hardwired zero register are still reported (they
    /// rename to a constant-zero physical register in the core model).
    pub fn srcs(&self) -> SrcIter {
        use Op::*;
        let int1 = RegRef::Int(Reg::new(self.rs1));
        let int2 = RegRef::Int(Reg::new(self.rs2));
        let fp1 = RegRef::Fp(FReg::new(self.rs1));
        let fp2 = RegRef::Fp(FReg::new(self.rs2));
        let (a, b) = match self.op {
            Nop | Halt | Li | Jal => (None, None),
            Add | Sub | Mul | Divu | Remu | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Min
            | Minu => (Some(int1), Some(int2)),
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu => (Some(int1), None),
            Ld(_) | Fld | Jalr => (Some(int1), None),
            St(_) => (Some(int1), Some(int2)),
            Fst => (Some(int1), Some(fp2)),
            Fadd | Fsub | Fmul | Fdiv => (Some(fp1), Some(fp2)),
            Fcvt => (Some(int1), None),
            Fcvti => (Some(fp1), None),
            Flt | Feq => (Some(fp1), Some(fp2)),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => (Some(int1), Some(int2)),
        };
        SrcIter { items: [a, b], next: 0 }
    }

    /// Whether this instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(self.op, Op::Ld(_) | Op::Fld)
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self.op, Op::St(_) | Op::Fst)
    }

    /// Whether this instruction is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.op, Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu)
    }

    /// Whether this instruction changes control flow (conditional or
    /// unconditional).
    pub fn is_control(&self) -> bool {
        self.is_cond_branch() || matches!(self.op, Op::Jal | Op::Jalr)
    }

    /// Memory access width, if this is a load or store.
    pub fn mem_width(&self) -> Option<Width> {
        match self.op {
            Op::Ld(w) | Op::St(w) => Some(w),
            Op::Fld | Op::Fst => Some(Width::D),
            _ => None,
        }
    }

    /// Functional-unit class.
    pub fn class(&self) -> OpClass {
        use Op::*;
        match self.op {
            Nop | Halt => OpClass::None,
            Mul => OpClass::IntMul,
            Divu | Remu => OpClass::IntDiv,
            Fadd | Fsub | Fcvt | Fcvti | Flt | Feq => OpClass::FpAdd,
            Fmul => OpClass::FpMul,
            Fdiv => OpClass::FpDiv,
            Ld(_) | Fld => OpClass::Load,
            St(_) | Fst => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal | Jalr => OpClass::Branch,
            _ => OpClass::IntAlu,
        }
    }
}

/// Iterator over an instruction's source registers; produced by
/// [`Inst::srcs`].
#[derive(Clone, Debug)]
pub struct SrcIter {
    items: [Option<RegRef>; 2],
    next: usize,
}

impl Iterator for SrcIter {
    type Item = RegRef;

    fn next(&mut self) -> Option<RegRef> {
        while self.next < 2 {
            let item = self.items[self.next];
            self.next += 1;
            if item.is_some() {
                return item;
            }
        }
        None
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        let (rd, rs1, rs2, imm) = (self.rd, self.rs1, self.rs2, self.imm);
        match self.op {
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            Li => write!(f, "li x{rd}, {imm}"),
            Ld(w) => write!(f, "ld{} x{rd}, {imm}(x{rs1})", width_suffix(w)),
            St(w) => write!(f, "st{} x{rs2}, {imm}(x{rs1})", width_suffix(w)),
            Fld => write!(f, "fld f{rd}, {imm}(x{rs1})"),
            Fst => write!(f, "fst f{rs2}, {imm}(x{rs1})"),
            Jal => write!(f, "jal x{rd}, @{imm}"),
            Jalr => write!(f, "jalr x{rd}, x{rs1}, {imm}"),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                write!(f, "{:?} x{rs1}, x{rs2}, @{imm}", self.op)
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu => {
                write!(f, "{:?} x{rd}, x{rs1}, {imm}", self.op)
            }
            Fadd | Fsub | Fmul | Fdiv => write!(f, "{:?} f{rd}, f{rs1}, f{rs2}", self.op),
            Fcvt => write!(f, "fcvt f{rd}, x{rs1}"),
            Fcvti => write!(f, "fcvti x{rd}, f{rs1}"),
            Flt | Feq => write!(f, "{:?} x{rd}, f{rs1}, f{rs2}", self.op),
            _ => write!(f, "{:?} x{rd}, x{rs1}, x{rs2}", self.op),
        }
    }
}

fn width_suffix(w: Width) -> &'static str {
    match w {
        Width::B => "b",
        Width::H => "h",
        Width::W => "w",
        Width::D => "d",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(op: Op, rd: u8, rs1: u8, rs2: u8, imm: i64) -> Inst {
        Inst { op, rd, rs1, rs2, imm }
    }

    #[test]
    fn dst_of_zero_register_write_is_none() {
        let i = inst(Op::Add, 0, 1, 2, 0);
        assert_eq!(i.dst(), None);
    }

    #[test]
    fn load_store_dataflow() {
        let ld = inst(Op::Ld(Width::D), 5, 10, 0, 16);
        assert!(ld.is_load());
        assert!(!ld.is_store());
        assert_eq!(ld.dst(), Some(RegRef::Int(Reg::T0)));
        assert_eq!(ld.srcs().collect::<Vec<_>>(), vec![RegRef::Int(Reg::A0)]);
        assert_eq!(ld.mem_width(), Some(Width::D));

        let st = inst(Op::St(Width::W), 0, 10, 11, 8);
        assert!(st.is_store());
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs().collect::<Vec<_>>(), vec![RegRef::Int(Reg::A0), RegRef::Int(Reg::A1)]);
    }

    #[test]
    fn fp_ops_use_fp_register_file() {
        let fadd = inst(Op::Fadd, 1, 2, 3, 0);
        assert_eq!(fadd.dst(), Some(RegRef::Fp(FReg::F1)));
        assert_eq!(
            fadd.srcs().collect::<Vec<_>>(),
            vec![RegRef::Fp(FReg::F2), RegRef::Fp(FReg::F3)]
        );
        let fst = inst(Op::Fst, 0, 10, 4, 0);
        assert_eq!(
            fst.srcs().collect::<Vec<_>>(),
            vec![RegRef::Int(Reg::A0), RegRef::Fp(FReg::F4)]
        );
    }

    #[test]
    fn branch_classification() {
        let b = inst(Op::Blt, 0, 1, 2, 42);
        assert!(b.is_cond_branch());
        assert!(b.is_control());
        assert_eq!(b.class(), OpClass::Branch);
        let j = inst(Op::Jal, 1, 0, 0, 7);
        assert!(!j.is_cond_branch());
        assert!(j.is_control());
    }

    #[test]
    fn fu_classes() {
        assert_eq!(inst(Op::Mul, 1, 2, 3, 0).class(), OpClass::IntMul);
        assert_eq!(inst(Op::Divu, 1, 2, 3, 0).class(), OpClass::IntDiv);
        assert_eq!(inst(Op::Fdiv, 1, 2, 3, 0).class(), OpClass::FpDiv);
        assert_eq!(inst(Op::Fld, 1, 2, 0, 0).class(), OpClass::Load);
        assert_eq!(inst(Op::Nop, 0, 0, 0, 0).class(), OpClass::None);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B.bytes(), 1);
        assert_eq!(Width::H.bytes(), 2);
        assert_eq!(Width::W.bytes(), 4);
        assert_eq!(Width::D.bytes(), 8);
    }

    #[test]
    fn display_is_nonempty_for_all_ops() {
        let i = inst(Op::Ld(Width::D), 5, 10, 0, 16);
        assert_eq!(i.to_string(), "ldd x5, 16(x10)");
        assert!(!inst(Op::Halt, 0, 0, 0, 0).to_string().is_empty());
    }
}
