//! Binary instruction encoding.
//!
//! A fixed 12-byte little-endian format — `[opcode u8][rd u8][rs1 u8]
//! [rs2 u8][imm i64]` — used to serialize programs to disk and to give
//! the instruction stream a defined storage footprint (the timing
//! model maps instruction index `i` to byte address `12·i` when an
//! I-side address is needed).
//!
//! The encoding round-trips exactly: see the property tests.

use crate::inst::{Inst, Op, Width};
use crate::program::Program;

/// Bytes per encoded instruction.
pub const INST_BYTES: usize = 12;

/// Error decoding a binary instruction stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream length is not a multiple of [`INST_BYTES`].
    TruncatedStream,
    /// Unknown opcode byte at the given instruction index.
    BadOpcode(usize, u8),
    /// A register field exceeds 31 at the given instruction index.
    BadRegister(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TruncatedStream => {
                write!(f, "byte stream is not a whole instruction count")
            }
            DecodeError::BadOpcode(i, b) => write!(f, "unknown opcode {b:#04x} at instruction {i}"),
            DecodeError::BadRegister(i) => {
                write!(f, "register index out of range at instruction {i}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

fn op_to_byte(op: Op) -> u8 {
    use Op::*;
    match op {
        Nop => 0,
        Halt => 1,
        Add => 2,
        Sub => 3,
        Mul => 4,
        Divu => 5,
        Remu => 6,
        And => 7,
        Or => 8,
        Xor => 9,
        Sll => 10,
        Srl => 11,
        Sra => 12,
        Slt => 13,
        Sltu => 14,
        Min => 15,
        Minu => 16,
        Addi => 17,
        Andi => 18,
        Ori => 19,
        Xori => 20,
        Slli => 21,
        Srli => 22,
        Srai => 23,
        Slti => 24,
        Sltiu => 25,
        Li => 26,
        Ld(Width::B) => 27,
        Ld(Width::H) => 28,
        Ld(Width::W) => 29,
        Ld(Width::D) => 30,
        St(Width::B) => 31,
        St(Width::H) => 32,
        St(Width::W) => 33,
        St(Width::D) => 34,
        Fld => 35,
        Fst => 36,
        Fadd => 37,
        Fsub => 38,
        Fmul => 39,
        Fdiv => 40,
        Fcvt => 41,
        Fcvti => 42,
        Flt => 43,
        Feq => 44,
        Beq => 45,
        Bne => 46,
        Blt => 47,
        Bge => 48,
        Bltu => 49,
        Bgeu => 50,
        Jal => 51,
        Jalr => 52,
    }
}

fn byte_to_op(b: u8) -> Option<Op> {
    use Op::*;
    Some(match b {
        0 => Nop,
        1 => Halt,
        2 => Add,
        3 => Sub,
        4 => Mul,
        5 => Divu,
        6 => Remu,
        7 => And,
        8 => Or,
        9 => Xor,
        10 => Sll,
        11 => Srl,
        12 => Sra,
        13 => Slt,
        14 => Sltu,
        15 => Min,
        16 => Minu,
        17 => Addi,
        18 => Andi,
        19 => Ori,
        20 => Xori,
        21 => Slli,
        22 => Srli,
        23 => Srai,
        24 => Slti,
        25 => Sltiu,
        26 => Li,
        27 => Ld(Width::B),
        28 => Ld(Width::H),
        29 => Ld(Width::W),
        30 => Ld(Width::D),
        31 => St(Width::B),
        32 => St(Width::H),
        33 => St(Width::W),
        34 => St(Width::D),
        35 => Fld,
        36 => Fst,
        37 => Fadd,
        38 => Fsub,
        39 => Fmul,
        40 => Fdiv,
        41 => Fcvt,
        42 => Fcvti,
        43 => Flt,
        44 => Feq,
        45 => Beq,
        46 => Bne,
        47 => Blt,
        48 => Bge,
        49 => Bltu,
        50 => Bgeu,
        51 => Jal,
        52 => Jalr,
        _ => return None,
    })
}

/// Encodes one instruction into its 12-byte form.
pub fn encode_inst(inst: &Inst) -> [u8; INST_BYTES] {
    let mut out = [0u8; INST_BYTES];
    out[0] = op_to_byte(inst.op);
    out[1] = inst.rd;
    out[2] = inst.rs1;
    out[3] = inst.rs2;
    out[4..12].copy_from_slice(&inst.imm.to_le_bytes());
    out
}

/// Decodes one instruction; `index` is used only for error reporting.
///
/// # Errors
///
/// Returns [`DecodeError`] on an unknown opcode or out-of-range
/// register field.
pub fn decode_inst(bytes: &[u8; INST_BYTES], index: usize) -> Result<Inst, DecodeError> {
    let op = byte_to_op(bytes[0]).ok_or(DecodeError::BadOpcode(index, bytes[0]))?;
    let (rd, rs1, rs2) = (bytes[1], bytes[2], bytes[3]);
    if rd >= 32 || rs1 >= 32 || rs2 >= 32 {
        return Err(DecodeError::BadRegister(index));
    }
    let imm = i64::from_le_bytes(bytes[4..12].try_into().expect("slice is 8 bytes"));
    Ok(Inst { op, rd, rs1, rs2, imm })
}

/// Serializes a whole program.
pub fn encode_program(prog: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(prog.len() * INST_BYTES);
    for inst in prog.insts() {
        out.extend_from_slice(&encode_inst(inst));
    }
    out
}

/// Deserializes a program.
///
/// # Errors
///
/// Returns [`DecodeError`] if the stream is truncated or any
/// instruction is malformed.
pub fn decode_program(bytes: &[u8]) -> Result<Program, DecodeError> {
    if !bytes.len().is_multiple_of(INST_BYTES) {
        return Err(DecodeError::TruncatedStream);
    }
    let mut insts = Vec::with_capacity(bytes.len() / INST_BYTES);
    for (i, chunk) in bytes.chunks_exact(INST_BYTES).enumerate() {
        let arr: &[u8; INST_BYTES] = chunk.try_into().expect("exact chunk");
        insts.push(decode_inst(arr, i)?);
    }
    Ok(Program::new(insts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Reg;

    #[test]
    fn single_instruction_round_trip() {
        let i = Inst { op: Op::Ld(Width::W), rd: 5, rs1: 10, rs2: 0, imm: -4096 };
        let enc = encode_inst(&i);
        assert_eq!(decode_inst(&enc, 0), Ok(i));
    }

    #[test]
    fn every_opcode_round_trips() {
        for b in 0..=52u8 {
            let op = byte_to_op(b).expect("contiguous opcode space");
            assert_eq!(op_to_byte(op), b, "{op:?}");
        }
        assert_eq!(byte_to_op(53), None);
        assert_eq!(byte_to_op(255), None);
    }

    #[test]
    fn program_round_trip() {
        let mut a = Asm::new();
        a.li(Reg::T0, 123);
        let top = a.here();
        a.addi(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, top);
        a.halt();
        let p = a.assemble();
        let bytes = encode_program(&p);
        assert_eq!(bytes.len(), p.len() * INST_BYTES);
        assert_eq!(decode_program(&bytes), Ok(p));
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode_program(&[0u8; 5]), Err(DecodeError::TruncatedStream));
        let mut bad_op = [0u8; INST_BYTES];
        bad_op[0] = 200;
        assert_eq!(decode_inst(&bad_op, 3), Err(DecodeError::BadOpcode(3, 200)));
        let mut bad_reg = [0u8; INST_BYTES];
        bad_reg[0] = 2; // Add
        bad_reg[1] = 40;
        assert_eq!(decode_inst(&bad_reg, 7), Err(DecodeError::BadRegister(7)));
        assert!(!DecodeError::TruncatedStream.to_string().is_empty());
    }
}
