//! A small deterministic PRNG (SplitMix64).
//!
//! The workspace is built to compile and test **fully offline** — no
//! external crates — so the workload generators, the fault-injection
//! plans (`vr-core`'s `FaultPlan`) and the property-style tests all
//! share this one seeded generator instead of pulling in `rand` /
//! `proptest`. Determinism is a correctness requirement here: the same
//! seed must reproduce the same synthetic graph, the same fault
//! schedule and the same test case on every platform.

/// SplitMix64: Steele, Lea & Flood's 64-bit mixing generator. Passes
/// BigCrush, needs only one `u64` of state, and — unlike library RNGs —
/// has a stable, documented output sequence we can rely on across
/// toolchain updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal
    /// sequences forever.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 for `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at
    /// most 2⁻⁶⁴·bound, irrelevant at simulator scales.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform signed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64_unit() < p
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Forks an independent generator seeded from this one's stream
    /// (used to give each fault-injection site its own schedule).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_reference_sequence() {
        // Reference outputs for seed 1234567 from the published
        // SplitMix64 algorithm.
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(a, r2.next_u64());
        assert_eq!(b, r2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn range_endpoints() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1_000 {
            let v = r.range(5, 7);
            assert!((5..7).contains(&v));
            let s = r.range_i64(-3, 3);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn f64_unit_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64_unit();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_extremes_and_rate() {
        let mut r = SplitMix64::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }

    #[test]
    fn fork_decorrelates() {
        let mut r = SplitMix64::new(5);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
