//! Program container.

use crate::inst::Inst;

/// An assembled program: a flat sequence of instructions.
///
/// Program counters are *instruction indices* (not byte addresses);
/// the timing model maps index `i` to instruction-memory byte address
/// `4·i` when it needs one (e.g. for the I-cache).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Wraps a sequence of instructions as a program. Execution starts
    /// at index 0.
    pub fn new(insts: Vec<Inst>) -> Program {
        Program { insts }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at index `pc`, if in bounds.
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// All instructions, in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Renders the program as readable assembly, one instruction per
    /// line with its index.
    pub fn to_listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:5}: {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;

    #[test]
    fn fetch_in_and_out_of_bounds() {
        let p = Program::new(vec![Inst::NOP, Inst { op: Op::Halt, ..Inst::NOP }]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.fetch(0), Some(&Inst::NOP));
        assert!(p.fetch(2).is_none());
        assert!(p.fetch(u64::MAX).is_none());
    }

    #[test]
    fn listing_contains_every_instruction() {
        let p = Program::new(vec![Inst::NOP; 3]);
        let listing = p.to_listing();
        assert_eq!(listing.lines().count(), 3);
        assert!(listing.contains("0: nop"));
    }
}
