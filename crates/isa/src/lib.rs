#![warn(missing_docs)]
//! # vr-isa
//!
//! The instruction-set-architecture layer of the Vector Runahead
//! reproduction: a small 64-bit RISC ISA, a label-resolving program
//! builder ([`Asm`]), a sparse byte-addressed [`Memory`], and a
//! functional (untimed) interpreter ([`Cpu::step`] /
//! [`Cpu::step_spec`]).
//!
//! The ISA is deliberately ISA-agnostic with respect to Vector
//! Runahead's requirements: it exposes register dataflow (so the core
//! can taint-track dependence chains), plain base+displacement
//! loads/stores (so a stride detector sees a clean per-PC address
//! sequence), and explicit conditional branches (so runahead lanes can
//! diverge). There is no exposed vector ISA — Vector Runahead
//! *microarchitecturally* reinterprets scalar instructions as vectors.
//!
//! ## Example
//!
//! ```
//! use vr_isa::{Asm, Cpu, Memory, Reg};
//!
//! // sum = 0; for i in 0..10 { sum += i }
//! let mut a = Asm::new();
//! let (i, sum, n) = (Reg::T0, Reg::T1, Reg::T2);
//! a.li(i, 0);
//! a.li(sum, 0);
//! a.li(n, 10);
//! let top = a.here();
//! a.add(sum, sum, i);
//! a.addi(i, i, 1);
//! a.blt(i, n, top);
//! a.halt();
//! let prog = a.assemble();
//!
//! let mut cpu = Cpu::new();
//! let mut mem = Memory::new();
//! while !cpu.halted() {
//!     cpu.step(&prog, &mut mem).expect("in-bounds pc");
//! }
//! assert_eq!(cpu.x(Reg::T1), 45);
//! ```

mod asm;
mod cpu;
mod encode;
mod inst;
mod mem;
mod overlay;
pub mod prng;
mod program;
mod reg;

pub use asm::{Asm, AsmError, Label};
pub use cpu::{Cpu, MemEffect, RegWrite, Step, StepError};
pub use encode::{
    decode_inst, decode_program, encode_inst, encode_program, DecodeError, INST_BYTES,
};
pub use inst::{Inst, Op, OpClass, SrcIter, Width};
pub use mem::Memory;
pub use overlay::StoreOverlay;
pub use prng::SplitMix64;
pub use program::Program;
pub use reg::{FReg, Reg, RegRef};
