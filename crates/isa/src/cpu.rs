//! Functional (untimed) interpreter.

use crate::inst::{Inst, Op, Width};
use crate::mem::Memory;
use crate::overlay::StoreOverlay;
use crate::program::Program;
use crate::reg::{FReg, Reg, RegRef};

/// Architectural register + PC state, with a functional `step`.
///
/// Two stepping modes exist:
///
/// * [`Cpu::step`] — the *architectural* step used to generate the
///   dynamic instruction stream: stores write through to [`Memory`].
/// * [`Cpu::step_spec`] — the *speculative* step used by the runahead
///   engines: stores are captured in a [`StoreOverlay`] (the "runahead
///   cache") and never reach memory; loads see the overlay first.
#[derive(Clone, Copy, Debug)]
pub struct Cpu {
    pc: u64,
    halted: bool,
    x: [u64; Reg::COUNT],
    f: [f64; FReg::COUNT],
    retired: u64,
}

/// Memory side-effect of one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemEffect {
    /// Effective byte address.
    pub addr: u64,
    /// Access width.
    pub width: Width,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
    /// Loaded value (zero-extended) or stored value (raw bits).
    pub value: u64,
}

/// Register write-back of one step. Floating-point values are carried
/// as raw bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegWrite {
    /// Destination register.
    pub reg: RegRef,
    /// New value (fp as bits).
    pub value: u64,
}

/// Full report of one executed instruction.
#[derive(Clone, Copy, Debug)]
pub struct Step {
    /// PC the instruction was fetched from.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Memory effect, if any.
    pub mem: Option<MemEffect>,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// Register write-back, if any.
    pub write: Option<RegWrite>,
    /// PC of the next instruction.
    pub next_pc: u64,
    /// Whether this step halted the machine.
    pub halted: bool,
}

impl Step {
    /// Whether control flow left the fall-through path (taken branch
    /// or jump).
    pub fn redirected(&self) -> bool {
        self.next_pc != self.pc.wrapping_add(1)
    }
}

/// Error from a functional step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepError {
    /// The PC fell outside the program (treated as a fault; runahead
    /// engines invalidate the lane, the architectural core treats it
    /// as a bug in the workload).
    PcOutOfBounds(u64),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::PcOutOfBounds(pc) => write!(f, "pc {pc} outside program"),
        }
    }
}

impl std::error::Error for StepError {}

/// Internal memory-port abstraction shared by the two stepping modes.
trait Port {
    fn load(&mut self, addr: u64, size: u64) -> u64;
    fn store(&mut self, addr: u64, size: u64, value: u64);
}

struct ArchPort<'a>(&'a mut Memory);

impl Port for ArchPort<'_> {
    fn load(&mut self, addr: u64, size: u64) -> u64 {
        self.0.read(addr, size)
    }
    fn store(&mut self, addr: u64, size: u64, value: u64) {
        self.0.write(addr, size, value);
    }
}

struct SpecPort<'a> {
    mem: &'a Memory,
    overlay: &'a mut StoreOverlay,
}

impl Port for SpecPort<'_> {
    fn load(&mut self, addr: u64, size: u64) -> u64 {
        self.overlay.load(self.mem, addr, size)
    }
    fn store(&mut self, addr: u64, size: u64, value: u64) {
        self.overlay.store(addr, size, value);
    }
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new()
    }
}

impl Cpu {
    /// Creates a CPU with all registers zero and PC 0.
    pub fn new() -> Cpu {
        Cpu { pc: 0, halted: false, x: [0; Reg::COUNT], f: [0.0; FReg::COUNT], retired: 0 }
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Whether a `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an integer register (`x0` reads as 0).
    pub fn x(&self, r: Reg) -> u64 {
        self.x[r.index()]
    }

    /// Writes an integer register (`x0` writes are discarded).
    pub fn set_x(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.x[r.index()] = value;
        }
    }

    /// Reads a floating-point register.
    pub fn f(&self, r: FReg) -> f64 {
        self.f[r.index()]
    }

    /// Writes a floating-point register.
    pub fn set_f(&mut self, r: FReg, value: f64) {
        self.f[r.index()] = value;
    }

    /// Reads either register file by [`RegRef`], fp values as bits.
    pub fn reg(&self, r: RegRef) -> u64 {
        match r {
            RegRef::Int(r) => self.x(r),
            RegRef::Fp(r) => self.f(r).to_bits(),
        }
    }

    /// Applies a [`RegWrite`] (used when restoring checkpointed state).
    pub fn apply(&mut self, w: RegWrite) {
        match w.reg {
            RegRef::Int(r) => self.set_x(r, w.value),
            RegRef::Fp(r) => self.set_f(r, f64::from_bits(w.value)),
        }
    }

    /// Architectural step: executes the instruction at the current PC,
    /// writing stores through to `mem`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::PcOutOfBounds`] if the PC is outside the
    /// program.
    pub fn step(&mut self, prog: &Program, mem: &mut Memory) -> Result<Step, StepError> {
        self.exec(prog, &mut ArchPort(mem))
    }

    /// Speculative step: stores are captured in `overlay` and never
    /// reach `mem`; loads observe `overlay` first.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::PcOutOfBounds`] if the PC is outside the
    /// program.
    pub fn step_spec(
        &mut self,
        prog: &Program,
        mem: &Memory,
        overlay: &mut StoreOverlay,
    ) -> Result<Step, StepError> {
        self.exec(prog, &mut SpecPort { mem, overlay })
    }

    fn exec(&mut self, prog: &Program, port: &mut dyn Port) -> Result<Step, StepError> {
        let pc = self.pc;
        let inst = *prog.fetch(pc).ok_or(StepError::PcOutOfBounds(pc))?;
        let mut mem_effect = None;
        let mut taken = None;
        let mut write = None;
        let mut next_pc = pc.wrapping_add(1);
        let mut halted = false;

        let rd = Reg::new(inst.rd);
        let rs1v = self.x(Reg::new(inst.rs1));
        let rs2v = self.x(Reg::new(inst.rs2));
        let imm = inst.imm;

        let mut write_x = |cpu: &mut Cpu, value: u64| {
            cpu.set_x(rd, value);
            if !rd.is_zero() {
                write = Some(RegWrite { reg: RegRef::Int(rd), value });
            }
        };

        use Op::*;
        match inst.op {
            Nop => {}
            Halt => {
                self.halted = true;
                halted = true;
                next_pc = pc;
            }
            Add => write_x(self, rs1v.wrapping_add(rs2v)),
            Sub => write_x(self, rs1v.wrapping_sub(rs2v)),
            Mul => write_x(self, rs1v.wrapping_mul(rs2v)),
            Divu => write_x(self, rs1v.checked_div(rs2v).unwrap_or(u64::MAX)),
            Remu => write_x(self, if rs2v == 0 { rs1v } else { rs1v % rs2v }),
            And => write_x(self, rs1v & rs2v),
            Or => write_x(self, rs1v | rs2v),
            Xor => write_x(self, rs1v ^ rs2v),
            Sll => write_x(self, rs1v.wrapping_shl(rs2v as u32 & 63)),
            Srl => write_x(self, rs1v.wrapping_shr(rs2v as u32 & 63)),
            Sra => write_x(self, ((rs1v as i64).wrapping_shr(rs2v as u32 & 63)) as u64),
            Slt => write_x(self, u64::from((rs1v as i64) < (rs2v as i64))),
            Sltu => write_x(self, u64::from(rs1v < rs2v)),
            Min => write_x(self, (rs1v as i64).min(rs2v as i64) as u64),
            Minu => write_x(self, rs1v.min(rs2v)),
            Addi => write_x(self, rs1v.wrapping_add(imm as u64)),
            Andi => write_x(self, rs1v & imm as u64),
            Ori => write_x(self, rs1v | imm as u64),
            Xori => write_x(self, rs1v ^ imm as u64),
            Slli => write_x(self, rs1v.wrapping_shl(imm as u32 & 63)),
            Srli => write_x(self, rs1v.wrapping_shr(imm as u32 & 63)),
            Srai => write_x(self, ((rs1v as i64).wrapping_shr(imm as u32 & 63)) as u64),
            Slti => write_x(self, u64::from((rs1v as i64) < imm)),
            Sltiu => write_x(self, u64::from(rs1v < imm as u64)),
            Li => write_x(self, imm as u64),
            Ld(w) => {
                let addr = rs1v.wrapping_add(imm as u64);
                let value = port.load(addr, w.bytes());
                mem_effect = Some(MemEffect { addr, width: w, is_store: false, value });
                write_x(self, value);
            }
            St(w) => {
                let addr = rs1v.wrapping_add(imm as u64);
                let value = rs2v & mask(w);
                port.store(addr, w.bytes(), value);
                mem_effect = Some(MemEffect { addr, width: w, is_store: true, value });
            }
            Fld => {
                let addr = rs1v.wrapping_add(imm as u64);
                let bits = port.load(addr, 8);
                mem_effect =
                    Some(MemEffect { addr, width: Width::D, is_store: false, value: bits });
                let fd = FReg::new(inst.rd);
                self.set_f(fd, f64::from_bits(bits));
                write = Some(RegWrite { reg: RegRef::Fp(fd), value: bits });
            }
            Fst => {
                let addr = rs1v.wrapping_add(imm as u64);
                let bits = self.f(FReg::new(inst.rs2)).to_bits();
                port.store(addr, 8, bits);
                mem_effect = Some(MemEffect { addr, width: Width::D, is_store: true, value: bits });
            }
            Fadd | Fsub | Fmul | Fdiv => {
                let a = self.f(FReg::new(inst.rs1));
                let b = self.f(FReg::new(inst.rs2));
                let v = match inst.op {
                    Fadd => a + b,
                    Fsub => a - b,
                    Fmul => a * b,
                    _ => a / b,
                };
                let fd = FReg::new(inst.rd);
                self.set_f(fd, v);
                write = Some(RegWrite { reg: RegRef::Fp(fd), value: v.to_bits() });
            }
            Fcvt => {
                let v = rs1v as f64;
                let fd = FReg::new(inst.rd);
                self.set_f(fd, v);
                write = Some(RegWrite { reg: RegRef::Fp(fd), value: v.to_bits() });
            }
            Fcvti => {
                let v = self.f(FReg::new(inst.rs1)) as u64;
                write_x(self, v);
            }
            Flt => {
                let v = u64::from(self.f(FReg::new(inst.rs1)) < self.f(FReg::new(inst.rs2)));
                write_x(self, v);
            }
            Feq => {
                let v = u64::from(self.f(FReg::new(inst.rs1)) == self.f(FReg::new(inst.rs2)));
                write_x(self, v);
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let t = match inst.op {
                    Beq => rs1v == rs2v,
                    Bne => rs1v != rs2v,
                    Blt => (rs1v as i64) < (rs2v as i64),
                    Bge => (rs1v as i64) >= (rs2v as i64),
                    Bltu => rs1v < rs2v,
                    _ => rs1v >= rs2v,
                };
                taken = Some(t);
                if t {
                    next_pc = imm as u64;
                }
            }
            Jal => {
                write_x(self, pc.wrapping_add(1));
                next_pc = imm as u64;
            }
            Jalr => {
                let target = rs1v.wrapping_add(imm as u64);
                write_x(self, pc.wrapping_add(1));
                next_pc = target;
            }
        }

        self.pc = next_pc;
        self.retired += 1;
        Ok(Step { pc, inst, mem: mem_effect, taken, write, next_pc, halted })
    }
}

fn mask(w: Width) -> u64 {
    match w {
        Width::B => 0xff,
        Width::H => 0xffff,
        Width::W => 0xffff_ffff,
        Width::D => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn run(prog: &Program, mem: &mut Memory, max: u64) -> Cpu {
        let mut cpu = Cpu::new();
        for _ in 0..max {
            if cpu.halted() {
                break;
            }
            cpu.step(prog, mem).expect("valid pc");
        }
        assert!(cpu.halted(), "program did not halt within {max} steps");
        cpu
    }

    #[test]
    fn arithmetic_semantics() {
        let mut a = Asm::new();
        a.li(Reg::T0, 7);
        a.li(Reg::T1, 3);
        a.mul(Reg::T2, Reg::T0, Reg::T1);
        a.divu(Reg::T3, Reg::T0, Reg::T1);
        a.remu(Reg::T4, Reg::T0, Reg::T1);
        a.sub(Reg::T5, Reg::T1, Reg::T0);
        a.halt();
        let cpu = run(&a.assemble(), &mut Memory::new(), 100);
        assert_eq!(cpu.x(Reg::T2), 21);
        assert_eq!(cpu.x(Reg::T3), 2);
        assert_eq!(cpu.x(Reg::T4), 1);
        assert_eq!(cpu.x(Reg::T5), (-4i64) as u64);
    }

    #[test]
    fn division_by_zero_follows_riscv() {
        let mut a = Asm::new();
        a.li(Reg::T0, 42);
        a.divu(Reg::T1, Reg::T0, Reg::ZERO);
        a.remu(Reg::T2, Reg::T0, Reg::ZERO);
        a.halt();
        let cpu = run(&a.assemble(), &mut Memory::new(), 10);
        assert_eq!(cpu.x(Reg::T1), u64::MAX);
        assert_eq!(cpu.x(Reg::T2), 42);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut mem = Memory::new();
        mem.write_u64(0x1000, 0x1234_5678_9abc_def0);
        let mut a = Asm::new();
        a.li(Reg::A0, 0x1000);
        a.ld(Reg::T0, Reg::A0, 0);
        a.ldw(Reg::T1, Reg::A0, 0);
        a.ldb(Reg::T2, Reg::A0, 1);
        a.st(Reg::T0, Reg::A0, 8);
        a.halt();
        let cpu = run(&a.assemble(), &mut mem, 10);
        assert_eq!(cpu.x(Reg::T0), 0x1234_5678_9abc_def0);
        assert_eq!(cpu.x(Reg::T1), 0x9abc_def0);
        assert_eq!(cpu.x(Reg::T2), 0xde);
        assert_eq!(mem.read_u64(0x1008), 0x1234_5678_9abc_def0);
    }

    #[test]
    fn branch_loop_and_reporting() {
        let mut a = Asm::new();
        a.li(Reg::T0, 0);
        a.li(Reg::T1, 5);
        let top = a.here();
        a.addi(Reg::T0, Reg::T0, 1);
        a.bne(Reg::T0, Reg::T1, top);
        a.halt();
        let prog = a.assemble();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        let mut taken = 0;
        while !cpu.halted() {
            let s = cpu.step(&prog, &mut mem).unwrap();
            if s.taken == Some(true) {
                taken += 1;
                assert!(s.redirected());
            }
        }
        assert_eq!(cpu.x(Reg::T0), 5);
        assert_eq!(taken, 4);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        let mut a = Asm::new();
        let func = a.label();
        a.jal(Reg::RA, func); // 0
        a.li(Reg::T1, 99); // 1 (return target)
        a.halt(); // 2
        a.bind(func);
        a.li(Reg::T0, 7); // 3
        a.jalr(Reg::ZERO, Reg::RA, 0);
        let cpu = run(&a.assemble(), &mut Memory::new(), 10);
        assert_eq!(cpu.x(Reg::T0), 7);
        assert_eq!(cpu.x(Reg::T1), 99);
    }

    #[test]
    fn fp_pipeline() {
        let mut mem = Memory::new();
        mem.write_f64(0x2000, 1.5);
        mem.write_f64(0x2008, 2.5);
        let mut a = Asm::new();
        a.li(Reg::A0, 0x2000);
        a.fld(FReg::F0, Reg::A0, 0);
        a.fld(FReg::F1, Reg::A0, 8);
        a.fadd(FReg::F2, FReg::F0, FReg::F1);
        a.fmul(FReg::F3, FReg::F0, FReg::F1);
        a.fst(FReg::F2, Reg::A0, 16);
        a.flt(Reg::T0, FReg::F0, FReg::F1);
        a.fcvti(Reg::T1, FReg::F3);
        a.halt();
        let cpu = run(&a.assemble(), &mut mem, 20);
        assert_eq!(mem.read_f64(0x2010), 4.0);
        assert_eq!(cpu.x(Reg::T0), 1);
        assert_eq!(cpu.x(Reg::T1), 3); // trunc(3.75)
    }

    #[test]
    fn pc_out_of_bounds_is_an_error() {
        let prog = Program::new(vec![Inst::NOP]);
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        cpu.step(&prog, &mut mem).unwrap();
        assert!(matches!(cpu.step(&prog, &mut mem), Err(StepError::PcOutOfBounds(1))));
    }

    #[test]
    fn speculative_stores_do_not_touch_memory_but_forward() {
        let mut mem = Memory::new();
        mem.write_u64(0x3000, 11);
        let mut a = Asm::new();
        a.li(Reg::A0, 0x3000);
        a.li(Reg::T0, 77);
        a.st(Reg::T0, Reg::A0, 0); // speculative store
        a.ld(Reg::T1, Reg::A0, 0); // must see 77 via overlay
        a.halt();
        let prog = a.assemble();
        let mut cpu = Cpu::new();
        let mut ov = StoreOverlay::new();
        while !cpu.halted() {
            cpu.step_spec(&prog, &mem, &mut ov).unwrap();
        }
        assert_eq!(cpu.x(Reg::T1), 77);
        assert_eq!(mem.read_u64(0x3000), 11, "memory must be untouched");
        assert!(!ov.is_empty());
        ov.clear();
        assert!(ov.is_empty());
    }

    #[test]
    fn halt_freezes_pc_and_reports() {
        let mut a = Asm::new();
        a.halt();
        let prog = a.assemble();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        let s = cpu.step(&prog, &mut mem).unwrap();
        assert!(s.halted);
        assert_eq!(cpu.pc(), 0);
        assert!(cpu.halted());
        assert_eq!(cpu.retired(), 1);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut a = Asm::new();
        a.li(Reg::ZERO, 123);
        a.addi(Reg::T0, Reg::ZERO, 5);
        a.halt();
        let cpu = run(&a.assemble(), &mut Memory::new(), 10);
        assert_eq!(cpu.x(Reg::ZERO), 0);
        assert_eq!(cpu.x(Reg::T0), 5);
    }
}
