//! Architectural register names.

use core::fmt;

/// An integer architectural register, `x0`–`x31`.
///
/// `x0` ([`Reg::ZERO`]) is hardwired to zero: reads return 0 and writes
/// are discarded, as in RISC-V. The remaining registers carry
/// RISC-V-flavoured ABI aliases purely for readability of hand-written
/// kernels; the hardware model attaches no meaning to them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return-address / link register.
    pub const RA: Reg = Reg(1);
    /// Stack pointer (by convention only).
    pub const SP: Reg = Reg(2);

    /// Argument register `a0` (`x10`).
    pub const A0: Reg = Reg(10);
    /// Argument register `a1` (`x11`).
    pub const A1: Reg = Reg(11);
    /// Argument register `a2` (`x12`).
    pub const A2: Reg = Reg(12);
    /// Argument register `a3` (`x13`).
    pub const A3: Reg = Reg(13);
    /// Argument register `a4` (`x14`).
    pub const A4: Reg = Reg(14);
    /// Argument register `a5` (`x15`).
    pub const A5: Reg = Reg(15);
    /// Argument register `a6` (`x16`).
    pub const A6: Reg = Reg(16);
    /// Argument register `a7` (`x17`).
    pub const A7: Reg = Reg(17);

    /// Temporary `t0` (`x5`).
    pub const T0: Reg = Reg(5);
    /// Temporary `t1` (`x6`).
    pub const T1: Reg = Reg(6);
    /// Temporary `t2` (`x7`).
    pub const T2: Reg = Reg(7);
    /// Temporary `t3` (`x28`).
    pub const T3: Reg = Reg(28);
    /// Temporary `t4` (`x29`).
    pub const T4: Reg = Reg(29);
    /// Temporary `t5` (`x30`).
    pub const T5: Reg = Reg(30);
    /// Temporary `t6` (`x31`).
    pub const T6: Reg = Reg(31);

    /// Callee-saved `s0` (`x8`).
    pub const S0: Reg = Reg(8);
    /// Callee-saved `s1` (`x9`).
    pub const S1: Reg = Reg(9);
    /// Callee-saved `s2` (`x18`).
    pub const S2: Reg = Reg(18);
    /// Callee-saved `s3` (`x19`).
    pub const S3: Reg = Reg(19);
    /// Callee-saved `s4` (`x20`).
    pub const S4: Reg = Reg(20);
    /// Callee-saved `s5` (`x21`).
    pub const S5: Reg = Reg(21);
    /// Callee-saved `s6` (`x22`).
    pub const S6: Reg = Reg(22);
    /// Callee-saved `s7` (`x23`).
    pub const S7: Reg = Reg(23);
    /// Callee-saved `s8` (`x24`).
    pub const S8: Reg = Reg(24);
    /// Callee-saved `s9` (`x25`).
    pub const S9: Reg = Reg(25);
    /// Extra callee-saved `s10` (`x26`).
    pub const S10: Reg = Reg(26);
    /// Extra callee-saved `s11` (`x27`).
    pub const S11: Reg = Reg(27);

    /// Number of integer architectural registers.
    pub const COUNT: usize = 32;

    /// Creates a register from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Reg {
        assert!(index < 32, "integer register index out of range");
        Reg(index)
    }

    /// Raw register index, `0..32`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A floating-point architectural register, `f0`–`f31`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FReg(u8);

impl FReg {
    /// Floating-point register `f0`.
    pub const F0: FReg = FReg(0);
    /// Floating-point register `f1`.
    pub const F1: FReg = FReg(1);
    /// Floating-point register `f2`.
    pub const F2: FReg = FReg(2);
    /// Floating-point register `f3`.
    pub const F3: FReg = FReg(3);
    /// Floating-point register `f4`.
    pub const F4: FReg = FReg(4);
    /// Floating-point register `f5`.
    pub const F5: FReg = FReg(5);
    /// Floating-point register `f6`.
    pub const F6: FReg = FReg(6);
    /// Floating-point register `f7`.
    pub const F7: FReg = FReg(7);

    /// Number of floating-point architectural registers.
    pub const COUNT: usize = 32;

    /// Creates a floating-point register from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> FReg {
        assert!(index < 32, "fp register index out of range");
        FReg(index)
    }

    /// Raw register index, `0..32`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A reference to either register file, used in dataflow reporting
/// (renaming, taint tracking).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RegRef {
    /// An integer register.
    Int(Reg),
    /// A floating-point register.
    Fp(FReg),
}

impl RegRef {
    /// A flat index over both register files: integer registers map to
    /// `0..32`, floating-point registers to `32..64`.
    pub fn flat_index(self) -> usize {
        match self {
            RegRef::Int(r) => r.index(),
            RegRef::Fp(f) => Reg::COUNT + f.index(),
        }
    }

    /// Total number of flat register slots ([`RegRef::flat_index`] range).
    pub const FLAT_COUNT: usize = Reg::COUNT + FReg::COUNT;
}

impl From<Reg> for RegRef {
    fn from(r: Reg) -> RegRef {
        RegRef::Int(r)
    }
}

impl From<FReg> for RegRef {
    fn from(f: FReg) -> RegRef {
        RegRef::Fp(f)
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Int(r) => r.fmt(f),
            RegRef::Fp(r) => r.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::A0.is_zero());
        assert_eq!(Reg::ZERO.index(), 0);
    }

    #[test]
    fn abi_aliases_map_to_expected_indices() {
        assert_eq!(Reg::A0.index(), 10);
        assert_eq!(Reg::T0.index(), 5);
        assert_eq!(Reg::T3.index(), 28);
        assert_eq!(Reg::S2.index(), 18);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn flat_index_is_injective_over_both_files() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u8 {
            assert!(seen.insert(RegRef::Int(Reg::new(i)).flat_index()));
            assert!(seen.insert(RegRef::Fp(FReg::new(i)).flat_index()));
        }
        assert_eq!(seen.len(), RegRef::FLAT_COUNT);
        assert!(seen.iter().all(|&i| i < RegRef::FLAT_COUNT));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::A0.to_string(), "x10");
        assert_eq!(FReg::F3.to_string(), "f3");
        assert_eq!(RegRef::Fp(FReg::F0).to_string(), "f0");
    }
}
