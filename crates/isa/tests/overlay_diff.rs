//! Differential test: the granule-based open-addressed [`StoreOverlay`]
//! against a trivially correct byte-map reference model (the historical
//! `HashMap<u64, u8>` representation), over randomized store/load
//! sequences of mixed widths with overlapping addresses and
//! cross-granule straddles (DESIGN.md §12).
//!
//! The reference model *is* the specification: a store overlays `size`
//! little-endian bytes at per-byte wrapping addresses; a load reads
//! each byte from the overlay if present, else from backing memory;
//! `len()` counts distinct overlaid byte addresses.

use std::collections::HashMap;

use vr_isa::{Memory, SplitMix64, StoreOverlay};

/// The reference byte-map model (the pre-granule implementation,
/// transcribed verbatim as executable specification).
#[derive(Default)]
struct ByteMapModel {
    bytes: HashMap<u64, u8>,
}

impl ByteMapModel {
    fn len(&self) -> usize {
        self.bytes.len()
    }

    fn clear(&mut self) {
        self.bytes.clear();
    }

    fn store(&mut self, addr: u64, size: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate().take(size as usize) {
            self.bytes.insert(addr.wrapping_add(i as u64), *b);
        }
    }

    fn load(&self, mem: &Memory, addr: u64, size: u64) -> u64 {
        let mut out = [0u8; 8];
        for (i, slot) in out.iter_mut().enumerate().take(size as usize) {
            let a = addr.wrapping_add(i as u64);
            *slot = match self.bytes.get(&a) {
                Some(b) => *b,
                None => (mem.read(a, 1) & 0xff) as u8,
            };
        }
        u64::from_le_bytes(out)
    }
}

/// Draws an address biased toward collisions: a small region so
/// overlapping stores, partial overwrites, and granule straddles are
/// common, plus occasional far/wrapping outliers.
fn draw_addr(rng: &mut SplitMix64) -> u64 {
    match rng.next_u64() % 16 {
        // Dense 512-byte region: heavy overlap, same-granule rewrites.
        0..=9 => 0x1000 + rng.next_u64() % 512,
        // Odd offsets near granule boundaries: straddles.
        10..=12 => 0x2000 + (rng.next_u64() % 64) * 8 + 5,
        // Sparse region: table growth and probe chains.
        13..=14 => 0x10_0000 + (rng.next_u64() % 4096) * 16,
        // Wrapping edge of the address space.
        _ => u64::MAX - rng.next_u64() % 16,
    }
}

fn draw_size(rng: &mut SplitMix64) -> u64 {
    // Mixed widths 1/2/4/8 plus odd sizes (3,5,6,7) — the ISA only
    // issues power-of-two widths but the overlay API is byte-granular.
    [1, 2, 4, 8, 1, 2, 4, 8, 3, 5, 6, 7][(rng.next_u64() % 12) as usize]
}

#[test]
fn granule_overlay_matches_byte_map_reference() {
    let mut mem = Memory::new();
    // Deterministic pseudo-random backing memory so "not overlaid"
    // bytes are distinguishable from zero.
    let mut bg = SplitMix64::new(0x5EED_BACC);
    for i in 0..256u64 {
        mem.write(0x1000 + i * 8, 8, bg.next_u64());
    }

    let mut rng = SplitMix64::new(0x00D1_FFEE);
    let mut ov = StoreOverlay::new();
    let mut model = ByteMapModel::default();

    for step in 0..200_000u64 {
        match rng.next_u64() % 10 {
            // Store (60%)
            0..=5 => {
                let (a, s, v) = (draw_addr(&mut rng), draw_size(&mut rng), rng.next_u64());
                ov.store(a, s, v);
                model.store(a, s, v);
            }
            // Load (30%) — compare values byte-exactly.
            6..=8 => {
                let (a, s) = (draw_addr(&mut rng), draw_size(&mut rng));
                assert_eq!(
                    ov.load(&mem, a, s),
                    model.load(&mem, a, s),
                    "load mismatch at step {step}: addr={a:#x} size={s}"
                );
            }
            // Clear (10%) — exercises the generation counter.
            _ => {
                ov.clear();
                model.clear();
            }
        }
        assert_eq!(ov.len(), model.len(), "len mismatch at step {step}");
        assert_eq!(ov.is_empty(), model.len() == 0);
    }
}

#[test]
fn copy_from_matches_reference_after_divergence() {
    let mem = Memory::new();
    let mut rng = SplitMix64::new(0xC0FF_EE00);
    for round in 0..200 {
        let mut src = StoreOverlay::new();
        let mut model = ByteMapModel::default();
        for _ in 0..rng.next_u64() % 300 {
            let (a, s, v) = (draw_addr(&mut rng), draw_size(&mut rng), rng.next_u64());
            src.store(a, s, v);
            model.store(a, s, v);
        }
        // A destination with unrelated prior contents (a previous
        // lane's state) must become an exact copy of `src`.
        let mut dst = StoreOverlay::new();
        for _ in 0..rng.next_u64() % 100 {
            dst.store(draw_addr(&mut rng), draw_size(&mut rng), rng.next_u64());
        }
        dst.copy_from(&src);
        assert_eq!(dst.len(), model.len(), "round {round}");
        for _ in 0..256 {
            let (a, s) = (draw_addr(&mut rng), draw_size(&mut rng));
            assert_eq!(dst.load(&mem, a, s), model.load(&mem, a, s), "round {round}");
        }
    }
}
