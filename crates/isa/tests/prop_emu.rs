//! Property-style tests of the functional emulator.
//!
//! These were originally written with `proptest`; the workspace now
//! builds fully offline, so they run as seeded loops over
//! `vr_isa::SplitMix64` instead. Determinism is a feature: a failure
//! reproduces identically on every platform from the case index.

use vr_isa::{Cpu, Inst, Memory, Op, Program, Reg, RegRef, SplitMix64, StoreOverlay, Width};

const ALU_OPS: &[Op] = &[
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Divu,
    Op::Remu,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Sll,
    Op::Srl,
    Op::Sra,
    Op::Slt,
    Op::Sltu,
    Op::Min,
    Op::Minu,
];

const IMM_OPS: &[Op] = &[
    Op::Addi,
    Op::Andi,
    Op::Ori,
    Op::Xori,
    Op::Slli,
    Op::Srli,
    Op::Srai,
    Op::Slti,
    Op::Sltiu,
    Op::Li,
];

const MEM_OPS: &[Op] = &[
    Op::Ld(Width::D),
    Op::Ld(Width::W),
    Op::Ld(Width::B),
    Op::St(Width::D),
    Op::St(Width::W),
    Op::St(Width::B),
];

/// Generates a random straight-line (branch-free,
/// memory-address-confined) instruction.
fn arb_inst(rng: &mut SplitMix64) -> Inst {
    let reg = |rng: &mut SplitMix64| rng.below(32) as u8;
    match rng.below(3) {
        0 => {
            let op = ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize];
            Inst { op, rd: reg(rng), rs1: reg(rng), rs2: reg(rng), imm: 0 }
        }
        1 => {
            let op = IMM_OPS[rng.below(IMM_OPS.len() as u64) as usize];
            Inst { op, rd: reg(rng), rs1: reg(rng), rs2: 0, imm: rng.range_i64(-1000, 1000) }
        }
        // Memory ops: rs1 is forced to x0 so addresses stay within
        // imm's small range — keeps the flat-memory oracle cheap.
        _ => {
            let op = MEM_OPS[rng.below(MEM_OPS.len() as u64) as usize];
            Inst { op, rd: reg(rng), rs1: 0, rs2: reg(rng), imm: rng.range_i64(0, 4096) }
        }
    }
}

/// A random straight-line program of `1..=max_len` instructions,
/// terminated with `Halt`.
fn arb_program(rng: &mut SplitMix64, max_len: u64) -> Program {
    let len = rng.range(1, max_len + 1);
    let mut insts: Vec<Inst> = (0..len).map(|_| arb_inst(rng)).collect();
    insts.push(Inst { op: Op::Halt, ..Inst::NOP });
    Program::new(insts)
}

fn run_arch(prog: &Program) -> (Cpu, Memory) {
    let mut cpu = Cpu::new();
    let mut mem = Memory::new();
    while !cpu.halted() {
        cpu.step(prog, &mut mem).expect("straight-line program stays in bounds");
    }
    (cpu, mem)
}

/// Architectural execution is deterministic: two runs of the same
/// program produce identical register files and memory effects.
#[test]
fn emulator_is_deterministic() {
    let mut rng = SplitMix64::new(0xE41D_0001);
    for case in 0..96 {
        let prog = arb_program(&mut rng, 60);
        let (cpu1, mem1) = run_arch(&prog);
        let (cpu2, mem2) = run_arch(&prog);
        for i in 0..32 {
            assert_eq!(cpu1.x(Reg::new(i)), cpu2.x(Reg::new(i)), "case {case} reg {i}");
        }
        for a in (0..4096u64).step_by(8) {
            assert_eq!(mem1.read_u64(a), mem2.read_u64(a), "case {case} addr {a:#x}");
        }
    }
}

/// The zero register reads as zero at every point in execution.
#[test]
fn zero_register_never_changes() {
    let mut rng = SplitMix64::new(0xE41D_0002);
    for case in 0..96 {
        let prog = arb_program(&mut rng, 60);
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&prog, &mut mem).unwrap();
            assert_eq!(cpu.x(Reg::ZERO), 0, "case {case}");
        }
    }
}

/// Speculative execution (stores into an overlay) computes the same
/// register results as architectural execution and never mutates
/// memory.
#[test]
fn speculative_matches_architectural() {
    let mut rng = SplitMix64::new(0xE41D_0003);
    for case in 0..96 {
        let prog = arb_program(&mut rng, 60);
        let (arch_cpu, _) = run_arch(&prog);

        let mem = Memory::new();
        let mut spec_cpu = Cpu::new();
        let mut overlay = StoreOverlay::new();
        while !spec_cpu.halted() {
            spec_cpu.step_spec(&prog, &mem, &mut overlay).unwrap();
        }
        for i in 0..32 {
            assert_eq!(arch_cpu.x(Reg::new(i)), spec_cpu.x(Reg::new(i)), "case {case} reg {i}");
        }
        assert_eq!(mem.mapped_pages(), 0, "speculative run must not touch memory");
    }
}

/// Every step report is self-consistent with the static dataflow
/// metadata of the instruction.
#[test]
fn step_reports_match_static_dataflow() {
    let mut rng = SplitMix64::new(0xE41D_0004);
    for case in 0..96 {
        let prog = arb_program(&mut rng, 40);
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        while !cpu.halted() {
            let s = cpu.step(&prog, &mut mem).unwrap();
            if let Some(w) = s.write {
                assert_eq!(Some(w.reg), s.inst.dst(), "case {case}");
                if let RegRef::Int(r) = w.reg {
                    assert_eq!(cpu.x(r), w.value, "case {case}");
                }
            }
            if let Some(m) = s.mem {
                assert_eq!(m.is_store, s.inst.is_store(), "case {case}");
                assert_eq!(Some(m.width), s.inst.mem_width(), "case {case}");
            } else {
                assert!(!s.inst.is_load() && !s.inst.is_store(), "case {case}");
            }
        }
    }
}

/// Binary encoding round-trips arbitrary well-formed instructions.
#[test]
fn encoding_round_trips() {
    let mut rng = SplitMix64::new(0xE41D_0005);
    for case in 0..64 {
        let len = rng.range(1, 100);
        let insts: Vec<Inst> = (0..len).map(|_| arb_inst(&mut rng)).collect();
        let prog = Program::new(insts);
        let bytes = vr_isa::encode_program(&prog);
        let back = vr_isa::decode_program(&bytes).expect("well-formed");
        assert_eq!(prog, back, "case {case}");
    }
}
