//! Property-based tests of the functional emulator.

use proptest::prelude::*;
use vr_isa::{Cpu, Inst, Memory, Op, Program, Reg, RegRef, StoreOverlay, Width};

/// Strategy generating a random straight-line (branch-free,
/// memory-address-confined) instruction.
fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = 0u8..32;
    let alu_op = prop_oneof![
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Divu),
        Just(Op::Remu),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Sll),
        Just(Op::Srl),
        Just(Op::Sra),
        Just(Op::Slt),
        Just(Op::Sltu),
        Just(Op::Min),
        Just(Op::Minu),
    ];
    let imm_op = prop_oneof![
        Just(Op::Addi),
        Just(Op::Andi),
        Just(Op::Ori),
        Just(Op::Xori),
        Just(Op::Slli),
        Just(Op::Srli),
        Just(Op::Srai),
        Just(Op::Slti),
        Just(Op::Sltiu),
        Just(Op::Li),
    ];
    let mem_op = prop_oneof![
        Just(Op::Ld(Width::D)),
        Just(Op::Ld(Width::W)),
        Just(Op::Ld(Width::B)),
        Just(Op::St(Width::D)),
        Just(Op::St(Width::W)),
        Just(Op::St(Width::B)),
    ];
    prop_oneof![
        (alu_op, reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(op, rd, rs1, rs2)| Inst { op, rd, rs1, rs2, imm: 0 }),
        (imm_op, reg.clone(), reg.clone(), -1000i64..1000)
            .prop_map(|(op, rd, rs1, imm)| Inst { op, rd, rs1, rs2: 0, imm }),
        // Memory ops: rs1 is forced to x0 so addresses stay within
        // imm's small range — keeps the flat-memory oracle cheap.
        (mem_op, reg.clone(), reg, 0i64..4096)
            .prop_map(|(op, rd, rs2, imm)| Inst { op, rd, rs1: 0, rs2, imm }),
    ]
}

fn run_arch(prog: &Program) -> (Cpu, Memory) {
    let mut cpu = Cpu::new();
    let mut mem = Memory::new();
    while !cpu.halted() {
        cpu.step(prog, &mut mem).expect("straight-line program stays in bounds");
    }
    (cpu, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Architectural execution is deterministic: two runs of the same
    /// program produce identical register files and memory effects.
    #[test]
    fn emulator_is_deterministic(insts in proptest::collection::vec(arb_inst(), 1..60)) {
        let mut insts = insts;
        insts.push(Inst { op: Op::Halt, ..Inst::NOP });
        let prog = Program::new(insts);
        let (cpu1, mem1) = run_arch(&prog);
        let (cpu2, mem2) = run_arch(&prog);
        for i in 0..32 {
            prop_assert_eq!(cpu1.x(Reg::new(i)), cpu2.x(Reg::new(i)));
        }
        for a in (0..4096u64).step_by(8) {
            prop_assert_eq!(mem1.read_u64(a), mem2.read_u64(a));
        }
    }

    /// The zero register reads as zero at every point in execution.
    #[test]
    fn zero_register_never_changes(insts in proptest::collection::vec(arb_inst(), 1..60)) {
        let mut insts = insts;
        insts.push(Inst { op: Op::Halt, ..Inst::NOP });
        let prog = Program::new(insts);
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&prog, &mut mem).unwrap();
            prop_assert_eq!(cpu.x(Reg::ZERO), 0);
        }
    }

    /// Speculative execution (stores into an overlay) computes the same
    /// register results as architectural execution and never mutates
    /// memory.
    #[test]
    fn speculative_matches_architectural(insts in proptest::collection::vec(arb_inst(), 1..60)) {
        let mut insts = insts;
        insts.push(Inst { op: Op::Halt, ..Inst::NOP });
        let prog = Program::new(insts);

        let (arch_cpu, _) = run_arch(&prog);

        let mem = Memory::new();
        let mut spec_cpu = Cpu::new();
        let mut overlay = StoreOverlay::new();
        while !spec_cpu.halted() {
            spec_cpu.step_spec(&prog, &mem, &mut overlay).unwrap();
        }
        for i in 0..32 {
            prop_assert_eq!(arch_cpu.x(Reg::new(i)), spec_cpu.x(Reg::new(i)));
        }
        prop_assert_eq!(mem.mapped_pages(), 0, "speculative run must not touch memory");
    }

    /// Every step report is self-consistent with the static dataflow
    /// metadata of the instruction.
    #[test]
    fn step_reports_match_static_dataflow(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        let mut insts = insts;
        insts.push(Inst { op: Op::Halt, ..Inst::NOP });
        let prog = Program::new(insts);
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        while !cpu.halted() {
            let s = cpu.step(&prog, &mut mem).unwrap();
            if let Some(w) = s.write {
                prop_assert_eq!(Some(w.reg), s.inst.dst());
                if let RegRef::Int(r) = w.reg {
                    prop_assert_eq!(cpu.x(r), w.value);
                }
            }
            if let Some(m) = s.mem {
                prop_assert_eq!(m.is_store, s.inst.is_store());
                prop_assert_eq!(Some(m.width), s.inst.mem_width());
            } else {
                prop_assert!(!s.inst.is_load() && !s.inst.is_store());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary encoding round-trips arbitrary well-formed instructions.
    #[test]
    fn encoding_round_trips(insts in proptest::collection::vec(arb_inst(), 1..100)) {
        let prog = Program::new(insts);
        let bytes = vr_isa::encode_program(&prog);
        let back = vr_isa::decode_program(&bytes).expect("well-formed");
        prop_assert_eq!(prog, back);
    }
}
