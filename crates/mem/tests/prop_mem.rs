//! Property-style tests of the memory hierarchy invariants, run as
//! seeded loops over `vr_isa::SplitMix64` (the workspace builds
//! offline, so no `proptest`).

use vr_isa::SplitMix64;
use vr_mem::{Access, Cache, CacheConfig, MemConfig, MemorySystem, MshrFile, Requestor};

/// A few hundred distinct lines so capacity effects appear.
fn arb_addr(rng: &mut SplitMix64) -> u64 {
    rng.below(512) * 64 + 8
}

fn arb_addrs(rng: &mut SplitMix64, max_len: u64) -> Vec<u64> {
    let len = rng.range(1, max_len);
    (0..len).map(|_| arb_addr(rng)).collect()
}

/// Timing sanity: every access's ready time is in the future, at
/// least L1 latency away, and bounded by lookup + DRAM + the total
/// queueing any prior accesses could have created.
#[test]
fn ready_times_are_sane() {
    let mut rng = SplitMix64::new(0x3E3_0001);
    for case in 0..64 {
        let addrs = arb_addrs(&mut rng, 200);
        let mut ms = MemorySystem::new(MemConfig::table1());
        let n = addrs.len() as u64;
        for (i, &a) in addrs.iter().enumerate() {
            let now = i as u64 * 7;
            // Dense miss streams legitimately exhaust the 24 MSHRs;
            // a real core would retry, so skip those.
            let Ok(out) = ms.access(a, Access::Load, Requestor::Main, 1, now) else {
                continue;
            };
            assert!(out.ready_at >= now + 4, "case {case}: at least L1 latency");
            let worst = now + 4 + 8 + 30 + 200 + 5 * n;
            assert!(out.ready_at <= worst, "case {case}: {} > {worst}", out.ready_at);
        }
    }
}

/// Re-accessing the same line after its fill completes is always
/// an L1 hit (no spurious invalidation), as long as no conflicting
/// fills happened in between.
#[test]
fn line_stays_resident_without_conflicts() {
    let mut rng = SplitMix64::new(0x3E3_0002);
    for case in 0..64 {
        let line = rng.below(1_000_000);
        let mut ms = MemorySystem::new(MemConfig::table1());
        let addr = line * 64;
        let r = ms.access(addr, Access::Load, Requestor::Main, 1, 0).unwrap();
        let r2 = ms.access(addr, Access::Load, Requestor::Main, 1, r.ready_at + 1).unwrap();
        assert_eq!(r2.hit, vr_mem::HitLevel::L1, "case {case} line {line}");
    }
}

/// The MSHR file never exceeds its capacity and never loses an
/// allocation before its ready time.
#[test]
fn mshr_capacity_invariant() {
    let mut rng = SplitMix64::new(0x3E3_0003);
    for case in 0..64 {
        let n = rng.range(1, 300);
        let mut m = MshrFile::new(8);
        let mut now = 0u64;
        for _ in 0..n {
            let line = rng.below(64);
            now += rng.below(500);
            m.expire(now);
            assert!(m.outstanding() <= 8, "case {case}");
            let la = line * 64;
            if m.pending(la).is_none() && m.has_free() {
                m.allocate(la, now, now + 200, Requestor::Main);
                assert_eq!(m.pending(la), Some(now + 200), "case {case}");
            }
        }
    }
}

/// LRU stack property: after touching k distinct lines of one
/// set (k ≤ assoc), all k remain resident.
#[test]
fn lru_stack_property() {
    let mut rng = SplitMix64::new(0x3E3_0004);
    for case in 0..64 {
        let touch: Vec<u64> = (0..rng.range(1, 64)).map(|_| rng.below(8)).collect();
        // 4-way, 2-set cache: lines 0..8 map alternately to both sets.
        let mut c =
            Cache::new(CacheConfig { size_bytes: 8 * 64, assoc: 4, line_bytes: 64, latency: 1 });
        for &l in &touch {
            let addr = l * 64;
            if c.lookup(addr).is_none() {
                c.fill(addr, None);
            }
        }
        // The 4 most-recently-touched lines of each set must be
        // resident.
        for set in 0..2u64 {
            let mut seen = Vec::new();
            for &l in touch.iter().rev() {
                if l % 2 == set && !seen.contains(&l) {
                    seen.push(l);
                    if seen.len() > 4 {
                        break;
                    }
                }
            }
            for &l in seen.iter().take(4) {
                assert!(c.contains(l * 64), "case {case}: line {l} must be MRU-resident");
            }
        }
    }
}

/// Determinism: identical access sequences produce identical
/// statistics.
#[test]
fn hierarchy_is_deterministic() {
    let mut rng = SplitMix64::new(0x3E3_0005);
    for case in 0..64 {
        let addrs = arb_addrs(&mut rng, 150);
        let run = || {
            let mut ms = MemorySystem::new(MemConfig::table1());
            let mut readies = Vec::new();
            for (i, &a) in addrs.iter().enumerate() {
                let kind = if i % 3 == 0 { Access::Store } else { Access::Load };
                if let Ok(out) = ms.access(a, kind, Requestor::Main, i as u64 % 7, i as u64 * 3) {
                    readies.push(out.ready_at);
                }
            }
            (readies, ms.stats().dram_reads_total(), ms.stats().load_hits)
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

/// Prefetches never make demand timing *worse*: a prefetched line
/// is served at least as fast as an unprefetched one would be at
/// the same cycle.
#[test]
fn prefetch_never_hurts_single_line() {
    let mut rng = SplitMix64::new(0x3E3_0006);
    for case in 0..64 {
        let line = rng.below(100_000);
        let gap = rng.below(600);
        let addr = line * 64;
        let mut with_pf = MemorySystem::new(MemConfig::table1());
        with_pf.prefetch(addr, Requestor::Runahead, 0);
        let t = 10 + gap;
        let a = with_pf.access(addr, Access::Load, Requestor::Main, 1, t).unwrap();

        let mut without = MemorySystem::new(MemConfig::table1());
        let b = without.access(addr, Access::Load, Requestor::Main, 1, t).unwrap();
        assert!(a.ready_at <= b.ready_at, "case {case}: {} > {}", a.ready_at, b.ready_at);
    }
}
