//! Set-associative cache with LRU replacement.

use crate::Requestor;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Access latency in cycles, charged on a hit at this level.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two set
    /// count).
    pub fn sets(&self) -> usize {
        let sets = self.size_bytes / (self.assoc as u64 * self.line_bytes);
        assert!(sets.is_power_of_two() && sets > 0, "set count must be a power of two");
        sets as usize
    }
}

/// Per-line bookkeeping. `prefetch_src` remembers who brought the line
/// in; it is consumed by the first demand touch (for prefetch-accuracy
/// and timeliness accounting).
#[derive(Clone, Copy, Debug)]
pub struct LineState {
    /// Line address (byte address of the first byte in the line).
    pub line_addr: u64,
    /// Needs write-back on eviction.
    pub dirty: bool,
    /// Who filled the line, if it was a prefetch and has not yet been
    /// demand-touched.
    pub prefetch_src: Option<Requestor>,
}

/// One level of set-associative, true-LRU cache.
///
/// The cache tracks *presence* and flags only — data lives in the
/// functional [`vr_isa::Memory`]. Fills happen at lookup time; the
/// in-flight window is modelled by the MSHR file above this level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// sets[i] is an MRU-first vector of lines.
    sets: Vec<Vec<LineState>>,
    set_mask: u64,
    line_shift: u32,
}

impl Cache {
    /// Creates an empty cache. Every set's way storage is allocated
    /// here, up front: `vec![Vec::with_capacity(..); n]` would clone
    /// an *empty* vector (capacity is not preserved by `Clone`), so a
    /// set first touched late in a run would still grow on the hot
    /// path — violating the allocation-free steady state (DESIGN.md
    /// §12).
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        let mut storage = Vec::with_capacity(sets);
        storage.resize_with(sets, || Vec::with_capacity(cfg.assoc));
        Cache {
            sets: storage,
            set_mask: sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            cfg,
        }
    }

    /// This level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Converts a byte address to its line address.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Single probe for `addr`: its way position within the set (0 =
    /// MRU), without changing replacement state. Every other lookup
    /// flavour is built on this one scan — `contains` + `lookup` used
    /// to walk the set twice per hit.
    pub fn probe(&self, addr: u64) -> Option<usize> {
        let la = self.line_addr(addr);
        self.sets[self.set_of(la)].iter().position(|l| l.line_addr == la)
    }

    /// Probes for `addr` without changing replacement state.
    pub fn contains(&self, addr: u64) -> bool {
        self.probe(addr).is_some()
    }

    /// Promotes the line at `pos` (as returned by [`Cache::probe`]) in
    /// `addr`'s set to MRU and returns a mutable reference to it.
    /// Single rotate — no remove/insert pair shifting the tail twice.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range for the set (a stale probe).
    pub fn promote(&mut self, addr: u64, pos: usize) -> &mut LineState {
        let la = self.line_addr(addr);
        let set_idx = self.set_of(la);
        let set = &mut self.sets[set_idx];
        debug_assert_eq!(set[pos].line_addr, la, "stale probe position");
        set[..=pos].rotate_right(1);
        &mut set[0]
    }

    /// Looks up `addr`; on a hit, refreshes LRU and returns a mutable
    /// reference to the line's state.
    pub fn lookup(&mut self, addr: u64) -> Option<&mut LineState> {
        let pos = self.probe(addr)?;
        Some(self.promote(addr, pos))
    }

    /// Inserts the line containing `addr` as MRU, evicting the LRU
    /// line of the set if needed. Returns the evicted line, if any.
    ///
    /// If the line is already present it is refreshed instead (its
    /// flags are left untouched) and `None` is returned.
    pub fn fill(&mut self, addr: u64, prefetch_src: Option<Requestor>) -> Option<LineState> {
        let la = self.line_addr(addr);
        if let Some(pos) = self.probe(la) {
            self.promote(la, pos);
            return None;
        }
        let assoc = self.cfg.assoc;
        let set_idx = self.set_of(la);
        let set = &mut self.sets[set_idx];
        let victim = if set.len() == assoc { set.pop() } else { None };
        set.insert(0, LineState { line_addr: la, dirty: false, prefetch_src });
        victim
    }

    /// Removes the line containing `addr` (back-invalidation), if
    /// present; returns its state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let la = self.line_addr(addr);
        let set_idx = self.set_of(la);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.line_addr == la)?;
        Some(set.remove(pos))
    }

    /// Number of resident lines (for tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64, latency: 1 })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
        assert_eq!(c.line_addr(0x7f), 0x40);
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        assert!(!c.contains(0x100));
        assert!(c.fill(0x100, None).is_none());
        assert!(c.contains(0x100));
        assert!(c.contains(0x13f)); // same line
        assert!(!c.contains(0x140)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set stride: 4 sets × 64 B ⇒ addresses 0, 256, 512 share set 0.
        c.fill(0, None);
        c.fill(256, None);
        c.lookup(0); // 0 becomes MRU
        let victim = c.fill(512, None).expect("set is full, must evict");
        assert_eq!(victim.line_addr, 256);
        assert!(c.contains(0));
        assert!(c.contains(512));
    }

    #[test]
    fn refill_of_resident_line_keeps_flags_and_evicts_nothing() {
        let mut c = tiny();
        c.fill(0, Some(Requestor::Runahead));
        assert!(c.fill(0, None).is_none());
        assert_eq!(c.lookup(0).unwrap().prefetch_src, Some(Requestor::Runahead));
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut c = tiny();
        c.fill(0, None);
        c.lookup(0).unwrap().dirty = true;
        c.fill(256, None);
        let victim = c.fill(512, None).unwrap();
        assert!(victim.dirty, "dirty LRU line must be reported on eviction");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0, None);
        assert!(c.invalidate(0x20).is_some()); // same line as 0
        assert!(!c.contains(0));
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn probe_reports_way_position_without_refreshing_lru() {
        let mut c = tiny();
        c.fill(0, None);
        c.fill(256, None); // same set, becomes MRU
        assert_eq!(c.probe(256), Some(0));
        assert_eq!(c.probe(0), Some(1));
        assert_eq!(c.probe(512), None);
        // probe must not have promoted 0: it is still the LRU victim.
        let victim = c.fill(512, None).expect("set full");
        assert_eq!(victim.line_addr, 0);
    }

    #[test]
    fn promote_moves_probed_line_to_mru() {
        let mut c = tiny();
        c.fill(0, None);
        c.fill(256, None);
        let pos = c.probe(0).unwrap();
        assert_eq!(c.promote(0, pos).line_addr, 0);
        assert_eq!(c.probe(0), Some(0), "promoted line is MRU");
        assert_eq!(c.probe(256), Some(1));
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = tiny();
        for i in 0..64u64 {
            c.fill(i * 64, None);
        }
        assert_eq!(c.resident_lines(), 8); // 4 sets × 2 ways
    }
}
