//! Miss-status holding registers.

use crate::Requestor;

#[derive(Clone, Copy, Debug)]
struct Entry {
    line_addr: u64,
    ready_at: u64,
    requestor: Requestor,
}

/// The L1-D MSHR file: at most `capacity` distinct lines may be
/// outstanding; additional misses to an already-outstanding line merge
/// for free. This is the structure that caps memory-level parallelism
/// (24 entries per Table 1) and that Vector Runahead's vectorized
/// gathers try to keep full.
///
/// Stored as a flat vector searched linearly: at ≤ a few dozen entries
/// a scan over contiguous `Copy` records beats hashing the address on
/// every probe (this is the hottest lookup in the hierarchy — every
/// access expires and probes the file).
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<Entry>,
    /// Σ (ready − alloc) over all allocations; occupancy integral for
    /// the MLP figure.
    occupancy_integral: u64,
    allocations: u64,
    merges: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            occupancy_integral: 0,
            allocations: 0,
            merges: 0,
        }
    }

    fn find(&self, line_addr: u64) -> Option<&Entry> {
        self.entries.iter().find(|e| e.line_addr == line_addr)
    }

    /// Releases entries whose fills have completed by `now`.
    pub fn expire(&mut self, now: u64) {
        self.entries.retain(|e| e.ready_at > now);
    }

    /// Whether `line_addr` is outstanding, without counting a merge
    /// (used by prefetch duplicate suppression, which is a probe, not
    /// a secondary miss).
    pub fn is_pending(&self, line_addr: u64) -> bool {
        self.find(line_addr).is_some()
    }

    /// If `line_addr` is already outstanding, merges and returns its
    /// ready cycle.
    pub fn pending(&mut self, line_addr: u64) -> Option<u64> {
        let ready = self.find(line_addr).map(|e| e.ready_at);
        if ready.is_some() {
            self.merges += 1;
        }
        ready
    }

    /// Attempts to allocate an entry for `line_addr`, resolving at
    /// `ready_at`. Returns `false` if the file is full.
    pub fn allocate(&mut self, line_addr: u64, now: u64, ready_at: u64, req: Requestor) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        debug_assert!(!self.is_pending(line_addr), "duplicate MSHR allocation");
        self.entries.push(Entry { line_addr, ready_at, requestor: req });
        self.occupancy_integral += ready_at.saturating_sub(now);
        self.allocations += 1;
        true
    }

    /// Requestor that allocated the outstanding entry for `line_addr`.
    pub fn requestor_of(&self, line_addr: u64) -> Option<Requestor> {
        self.find(line_addr).map(|e| e.requestor)
    }

    /// Number of currently outstanding entries (call [`MshrFile::expire`]
    /// first for an up-to-date answer).
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Earliest completion time among outstanding entries — the next
    /// cycle at which the memory system can change state on its own
    /// (used by the core's idle-cycle fast-forward).
    pub fn next_ready_at(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.ready_at).min()
    }

    /// Whether the file has a free entry.
    pub fn has_free(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Σ over all allocations of their in-flight duration, in cycles.
    /// Dividing by elapsed cycles yields average outstanding misses
    /// (the MLP metric).
    pub fn occupancy_integral(&self) -> u64 {
        self.occupancy_integral
    }

    /// Total allocations made.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total merged (secondary) misses.
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full_then_reject() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(0x00, 0, 100, Requestor::Main));
        assert!(m.allocate(0x40, 0, 100, Requestor::Main));
        assert!(!m.allocate(0x80, 0, 100, Requestor::Main));
        assert!(!m.has_free());
        assert_eq!(m.outstanding(), 2);
    }

    #[test]
    fn expire_frees_entries() {
        let mut m = MshrFile::new(1);
        m.allocate(0x00, 0, 100, Requestor::Main);
        m.expire(99);
        assert_eq!(m.outstanding(), 1);
        m.expire(100);
        assert_eq!(m.outstanding(), 0);
        assert!(m.has_free());
    }

    #[test]
    fn merge_returns_pending_ready_time() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 0, 250, Requestor::Runahead);
        assert_eq!(m.pending(0x40), Some(250));
        assert_eq!(m.pending(0x80), None);
        assert_eq!(m.merges(), 1);
        assert_eq!(m.requestor_of(0x40), Some(Requestor::Runahead));
    }

    #[test]
    fn occupancy_integral_accumulates_durations() {
        let mut m = MshrFile::new(4);
        m.allocate(0x00, 10, 210, Requestor::Main); // 200 cycles
        m.allocate(0x40, 20, 120, Requestor::Main); // 100 cycles
        assert_eq!(m.occupancy_integral(), 300);
        assert_eq!(m.allocations(), 2);
    }
}
