//! Indirect memory prefetcher (IMP) baseline, after Yu et al.,
//! MICRO'15.
//!
//! IMP pairs with the stride prefetcher: it learns patterns of the
//! form `addr(B) = base + (value(A[i]) << shift)` where `A[i]` is a
//! striding "index" load, then prefetches `B[A[i+Δ]]` by first reading
//! the future index values along the detected stride. By construction
//! it covers exactly *one* level of indirection — the reason the paper
//! reports it failing on deep-chain workloads while beating PRE on
//! simple-indirect ones.

use std::collections::{HashMap, VecDeque};

/// IMP tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ImpConfig {
    /// How many index values ahead of the current one to prefetch for.
    pub lookahead: u64,
    /// How many consecutive indices to prefetch per trigger.
    pub degree: u64,
    /// Matches needed before a pattern generates prefetches.
    pub confidence_threshold: u8,
    /// Maximum number of concurrently-tracked patterns.
    pub max_patterns: usize,
}

impl Default for ImpConfig {
    fn default() -> ImpConfig {
        ImpConfig { lookahead: 8, degree: 4, confidence_threshold: 2, max_patterns: 16 }
    }
}

#[derive(Clone, Copy, Debug)]
struct Pattern {
    index_pc: u64,
    shift: u32,
    base: u64,
    confidence: u8,
}

/// A generated indirect prefetch: the future index element to read and
/// the function producing the target address from its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImpPrefetch {
    /// Address of the future index element (`&A[i+Δ]`).
    pub index_addr: u64,
    /// `shift` of the learned pattern.
    pub shift: u32,
    /// `base` of the learned pattern.
    pub base: u64,
}

impl ImpPrefetch {
    /// Target address once the index value is known.
    pub fn target(&self, index_value: u64) -> u64 {
        self.base.wrapping_add(index_value << self.shift)
    }
}

/// The indirect memory prefetcher.
#[derive(Clone, Debug)]
pub struct Imp {
    cfg: ImpConfig,
    /// Most recent values produced by confident striding loads.
    recent_index: VecDeque<(u64, u64)>,
    /// indirect-load PC → learned pattern.
    patterns: HashMap<u64, Pattern>,
}

impl Imp {
    /// Creates an IMP with the given configuration.
    pub fn new(cfg: ImpConfig) -> Imp {
        Imp { cfg, recent_index: VecDeque::with_capacity(4), patterns: HashMap::new() }
    }

    /// Records the value loaded by a *confident striding* load — the
    /// candidate index stream.
    pub fn observe_index_value(&mut self, pc: u64, value: u64) {
        if self.recent_index.len() == 4 {
            self.recent_index.pop_front();
        }
        self.recent_index.push_back((pc, value));
    }

    /// Trains on a (non-striding) demand load: tries to explain its
    /// address as `base + (recent index value << shift)`.
    pub fn observe_load(&mut self, pc: u64, addr: u64) {
        if let Some(p) = self.patterns.get_mut(&pc) {
            // Verify the existing hypothesis against the newest value
            // of its index stream.
            if let Some(&(_, v)) =
                self.recent_index.iter().rev().find(|(ipc, _)| *ipc == p.index_pc)
            {
                let predicted = p.base.wrapping_add(v << p.shift);
                if predicted == addr {
                    p.confidence = (p.confidence + 1).min(3);
                    return;
                }
                // Re-derive the base with the same shift before giving
                // up (the base is constant for array indirection).
                let new_base = addr.wrapping_sub(v << p.shift);
                if new_base == p.base {
                    p.confidence = (p.confidence + 1).min(3);
                } else {
                    p.base = new_base;
                    p.confidence = 0;
                }
                return;
            }
        }
        // No pattern yet: hypothesize one per plausible (value, shift).
        // Prefer the most recent index value and word-sized shifts.
        if self.patterns.len() >= self.cfg.max_patterns {
            return;
        }
        if let Some(&(ipc, v)) = self.recent_index.back() {
            // Pick the shift that yields the "roundest" base — a
            // heuristic standing in for IMP's parallel candidate
            // verification.
            let shift = [3u32, 2, 1, 0]
                .into_iter()
                .max_by_key(|s| (addr.wrapping_sub(v << s)).trailing_zeros())
                .unwrap();
            self.patterns.insert(
                pc,
                Pattern {
                    index_pc: ipc,
                    shift,
                    base: addr.wrapping_sub(v << shift),
                    confidence: 0,
                },
            );
        }
    }

    /// Called when the striding load at `pc` executes at `addr` with a
    /// confident `stride`: returns the indirect prefetches to issue.
    /// The caller resolves each [`ImpPrefetch`] by reading the future
    /// index element (modelling IMP's fetch-then-compute pipeline).
    pub fn prefetches(&self, pc: u64, addr: u64, stride: i64) -> Vec<ImpPrefetch> {
        let mut out = Vec::new();
        for p in self.patterns.values() {
            if p.index_pc != pc || p.confidence < self.cfg.confidence_threshold {
                continue;
            }
            for k in self.cfg.lookahead..self.cfg.lookahead + self.cfg.degree {
                let index_addr = addr.wrapping_add((stride as u64).wrapping_mul(k));
                out.push(ImpPrefetch { index_addr, shift: p.shift, base: p.base });
            }
        }
        out
    }

    /// Number of currently learned patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate `B[A[i]]` with 8-byte elements: index load at PC 1,
    /// indirect load at PC 2, `addr_B = 0x8000 + A[i]·8`.
    #[test]
    fn learns_simple_indirection_and_prefetches() {
        let mut imp = Imp::new(ImpConfig::default());
        let a_vals = [5u64, 9, 2, 7, 11, 3];
        for v in a_vals {
            imp.observe_index_value(1, v);
            imp.observe_load(2, 0x8000 + v * 8);
        }
        assert_eq!(imp.pattern_count(), 1);
        // Now a confident stride event at A's PC.
        let pfs = imp.prefetches(1, 0x4000, 8);
        assert_eq!(pfs.len(), 4);
        assert_eq!(pfs[0].index_addr, 0x4000 + 8 * 8);
        // Resolving with a hypothetical future index value 42:
        assert_eq!(pfs[0].target(42), 0x8000 + 42 * 8);
    }

    #[test]
    fn no_prefetch_before_confidence() {
        let mut imp = Imp::new(ImpConfig::default());
        imp.observe_index_value(1, 5);
        imp.observe_load(2, 0x8000 + 5 * 8);
        assert!(imp.prefetches(1, 0x4000, 8).is_empty());
    }

    #[test]
    fn random_unrelated_loads_do_not_gain_confidence() {
        let mut imp = Imp::new(ImpConfig::default());
        let mut x = 999u64;
        for i in 0..50 {
            imp.observe_index_value(1, i);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            imp.observe_load(2, x % 0x10_0000);
        }
        assert!(imp.prefetches(1, 0, 8).is_empty());
    }

    #[test]
    fn pattern_table_is_bounded() {
        let mut imp = Imp::new(ImpConfig { max_patterns: 4, ..ImpConfig::default() });
        for pc in 0..100u64 {
            imp.observe_index_value(1, pc);
            imp.observe_load(1000 + pc, 0x8000 + pc * 8);
        }
        assert!(imp.pattern_count() <= 4);
    }

    #[test]
    fn four_byte_indices_use_shift_two() {
        let mut imp = Imp::new(ImpConfig::default());
        for v in [6u64, 13, 1, 20] {
            imp.observe_index_value(7, v);
            imp.observe_load(8, 0x2_0000 + v * 4);
        }
        let pfs = imp.prefetches(7, 0x1000, 4);
        assert!(!pfs.is_empty());
        assert_eq!(pfs[0].target(100), 0x2_0000 + 100 * 4);
    }
}
