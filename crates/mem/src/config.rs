//! Memory-system configuration.

use vr_obs::Fnv64;

use crate::cache::CacheConfig;
use crate::imp::ImpConfig;

/// Full memory-system configuration; defaults mirror the paper's
/// Table 1.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// L1 data cache (32 KB, 8-way, 4-cycle).
    pub l1d: CacheConfig,
    /// Private L2 (256 KB, 8-way, 8-cycle).
    pub l2: CacheConfig,
    /// Shared L3 (8 MB, 16-way, 30-cycle).
    pub l3: CacheConfig,
    /// L1-D MSHR entries (24).
    pub mshrs: usize,
    /// DRAM minimum latency in cycles (50 ns @ 4 GHz = 200).
    pub dram_min_latency: u64,
    /// Cycles per 64 B line at the DRAM pins (51.2 GB/s @ 4 GHz = 5).
    pub dram_cycles_per_line: u64,
    /// Whether the always-on stride prefetcher is active.
    pub stride_prefetcher: bool,
    /// Stride prefetcher streams / degree / distance.
    pub stride_params: (usize, u64, u64),
    /// Whether the IMP baseline prefetcher is active.
    pub imp: bool,
    /// IMP tuning.
    pub imp_config: ImpConfig,
    /// Oracle mode: every main-thread demand load completes with L1
    /// latency (the paper's "knows all memory accesses in advance"
    /// upper bound). State and traffic are still modelled.
    pub oracle: bool,
}

impl MemConfig {
    /// The paper's Table 1 memory system.
    pub fn table1() -> MemConfig {
        MemConfig {
            l1d: CacheConfig { size_bytes: 32 << 10, assoc: 8, line_bytes: 64, latency: 4 },
            l2: CacheConfig { size_bytes: 256 << 10, assoc: 8, line_bytes: 64, latency: 8 },
            l3: CacheConfig { size_bytes: 8 << 20, assoc: 16, line_bytes: 64, latency: 30 },
            mshrs: 24,
            dram_min_latency: 200,
            dram_cycles_per_line: 5,
            stride_prefetcher: true,
            stride_params: (16, 4, 16),
            imp: false,
            imp_config: ImpConfig::default(),
            oracle: false,
        }
    }

    /// Table 1 with the IMP baseline enabled.
    pub fn table1_with_imp() -> MemConfig {
        MemConfig { imp: true, ..MemConfig::table1() }
    }

    /// Table 1 in oracle (perfect-prefetch) mode.
    pub fn table1_oracle() -> MemConfig {
        MemConfig { oracle: true, ..MemConfig::table1() }
    }

    /// Result-store fingerprint hook (DESIGN.md §11): folds every
    /// memory-system knob into `h` in declaration order.
    ///
    /// Written with *exhaustive destructuring* — no `..` rest pattern —
    /// so adding a field to `MemConfig` (or `CacheConfig`/`ImpConfig`)
    /// without deciding how it fingerprints is a compile error, never
    /// a stale cache hit.
    pub fn fingerprint(&self, h: &mut Fnv64) {
        fn cache(h: &mut Fnv64, c: &CacheConfig) {
            let CacheConfig { size_bytes, assoc, line_bytes, latency } = c;
            h.write_u64(*size_bytes);
            h.write_u64(*assoc as u64);
            h.write_u64(*line_bytes);
            h.write_u64(*latency);
        }
        let MemConfig {
            l1d,
            l2,
            l3,
            mshrs,
            dram_min_latency,
            dram_cycles_per_line,
            stride_prefetcher,
            stride_params,
            imp,
            imp_config,
            oracle,
        } = self;
        h.write_str("MemConfig");
        cache(h, l1d);
        cache(h, l2);
        cache(h, l3);
        h.write_u64(*mshrs as u64);
        h.write_u64(*dram_min_latency);
        h.write_u64(*dram_cycles_per_line);
        h.write_bool(*stride_prefetcher);
        let (streams, degree, distance) = stride_params;
        h.write_u64(*streams as u64);
        h.write_u64(*degree);
        h.write_u64(*distance);
        h.write_bool(*imp);
        let ImpConfig { lookahead, degree, confidence_threshold, max_patterns } = imp_config;
        h.write_u64(*lookahead);
        h.write_u64(*degree);
        h.write_u64(u64::from(*confidence_threshold));
        h.write_u64(*max_patterns as u64);
        h.write_bool(*oracle);
    }

    /// A deliberately small hierarchy for fast unit tests: 512 B L1,
    /// 2 KB L2, 8 KB L3, 4 MSHRs.
    pub fn tiny_for_tests() -> MemConfig {
        MemConfig {
            l1d: CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64, latency: 4 },
            l2: CacheConfig { size_bytes: 2 << 10, assoc: 4, line_bytes: 64, latency: 8 },
            l3: CacheConfig { size_bytes: 8 << 10, assoc: 8, line_bytes: 64, latency: 30 },
            mshrs: 4,
            dram_min_latency: 200,
            dram_cycles_per_line: 5,
            stride_prefetcher: false,
            stride_params: (16, 4, 16),
            imp: false,
            imp_config: ImpConfig::default(),
            oracle: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_numbers() {
        let c = MemConfig::table1();
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.assoc, 8);
        assert_eq!(c.l1d.latency, 4);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.l3.assoc, 16);
        assert_eq!(c.mshrs, 24);
        assert_eq!(c.dram_min_latency, 200);
        assert_eq!(c.dram_cycles_per_line, 5);
        assert!(c.stride_prefetcher);
        assert!(!c.oracle);
    }

    #[test]
    fn fingerprints_separate_memory_variants() {
        let fp = |c: &MemConfig| {
            let mut h = Fnv64::new();
            c.fingerprint(&mut h);
            h.finish()
        };
        let configs = [
            MemConfig::table1(),
            MemConfig::table1_with_imp(),
            MemConfig::table1_oracle(),
            MemConfig::tiny_for_tests(),
            MemConfig { mshrs: 8, ..MemConfig::table1() },
            MemConfig { stride_prefetcher: false, ..MemConfig::table1() },
            MemConfig { dram_min_latency: 100, ..MemConfig::table1() },
        ];
        let mut digests: Vec<u64> = configs.iter().map(fp).collect();
        assert_eq!(digests[0], fp(&MemConfig::table1()), "deterministic");
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), configs.len(), "all variants fingerprint distinctly");
    }

    #[test]
    fn variants_toggle_single_features() {
        assert!(MemConfig::table1_with_imp().imp);
        assert!(MemConfig::table1_oracle().oracle);
        let tiny = MemConfig::tiny_for_tests();
        assert_eq!(tiny.l1d.sets(), 4);
    }
}
