//! The assembled memory system.

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::dram::Dram;
use crate::imp::Imp;
use crate::mshr::MshrFile;
use crate::shared::{SharedLlc, SharedOutcome};
use crate::stats::{MemStats, TimelinessLevel};
use crate::stride::StridePrefetcher;
use crate::telemetry::PfTelemetry;
use crate::Requestor;
use vr_isa::SplitMix64;

/// Kind of memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// A read.
    Load,
    /// A write (write-allocate, write-back).
    Store,
}

/// Level that served an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitLevel {
    /// L1 data cache hit.
    L1,
    /// L2 hit.
    L2,
    /// L3 (LLC) hit.
    L3,
    /// Served from DRAM (LLC miss), or merged with an outstanding
    /// DRAM fetch.
    Dram,
}

/// Result of an [`MemorySystem::access`].
#[derive(Clone, Copy, Debug)]
pub struct AccessOutcome {
    /// Absolute cycle at which the data is available.
    pub ready_at: u64,
    /// Level that served the access.
    pub hit: HitLevel,
    /// If the line was brought in by a prefetcher/runahead and this is
    /// its first demand touch: who prefetched it.
    pub prefetched_by: Option<Requestor>,
}

/// Error: the MSHR file has no free entry; the access must be retried
/// (demand) or dropped (prefetch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrFull;

impl std::fmt::Display for MshrFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all MSHR entries are in use")
    }
}

impl std::error::Error for MshrFull {}

/// Seeded chaos applied to *speculative* traffic only (prefetches) —
/// the fault-injection harness's lever inside the memory system.
/// Because demand accesses are untouched, any schedule of drops and
/// delays is architecturally invisible by construction; what it
/// perturbs is timing and coverage, which the differential oracle
/// verifies does not leak into committed state.
#[derive(Clone, Copy, Debug)]
struct PrefetchChaos {
    drop_p: f64,
    delay_p: f64,
    delay_cycles: u64,
    rng: SplitMix64,
}

/// Three-level hierarchy + MSHRs + DRAM + prefetchers.
///
/// See the crate docs for the timing contract. The instruction cache
/// is not modelled: every evaluated kernel is a loop of at most a few
/// hundred instructions, which trivially resides in the 32 KB L1-I
/// (documented substitution in DESIGN.md).
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    mshr: MshrFile,
    dram: Dram,
    stride: StridePrefetcher,
    imp: Imp,
    stats: MemStats,
    chaos: Option<PrefetchChaos>,
    /// Optional prefetch-lifecycle tracker. Boxed so the disabled
    /// (default) case costs one pointer; every hook is an `if let` on
    /// a prefetch *bookkeeping* path, never the per-access fast path.
    telemetry: Option<Box<PfTelemetry>>,
    /// Chip-shared LLC attachment. `None` (the default) keeps the
    /// private L3 + DRAM path untouched — single-core timing is
    /// bit-identical to a build without this field.
    shared: Option<SharedAttachment>,
}

/// Attachment of this per-core hierarchy to a chip-shared LLC broker:
/// when present, every L2 miss bypasses the private L3/DRAM and goes
/// through the shared banked LLC instead (see [`crate::SharedLlc`]).
///
/// The broker itself is owned by the chip and only *installed* here
/// (`llc: Some`) for the duration of this core's tick — the chip moves
/// the `Box` in before stepping the core and takes it back after, so
/// the hot path is an uncontended `&mut` with no lock.
#[derive(Clone, Debug)]
struct SharedAttachment {
    llc: Option<Box<SharedLlc>>,
    core: u32,
}

impl MemorySystem {
    /// MSHR entries a hardware prefetcher may never occupy.
    pub const DEMAND_RESERVED_MSHRS: usize = 2;

    /// Builds the memory system from a configuration.
    pub fn new(cfg: MemConfig) -> MemorySystem {
        let (streams, degree, distance) = cfg.stride_params;
        MemorySystem {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            mshr: MshrFile::new(cfg.mshrs),
            dram: Dram::new(cfg.dram_min_latency, cfg.dram_cycles_per_line),
            stride: StridePrefetcher::new(streams, degree, distance),
            imp: Imp::new(cfg.imp_config),
            stats: MemStats::default(),
            chaos: None,
            telemetry: None,
            shared: None,
            cfg,
        }
    }

    /// Attaches this hierarchy to a chip-shared LLC + DRAM broker as
    /// core `core`. From then on every L2 miss crosses the chip
    /// interconnect into the shared banked LLC instead of the private
    /// L3/DRAM; the private L3 sits unused. Shared-L3 write-backs are
    /// accounted on the broker (chip-level stats), not in this core's
    /// [`MemStats::dram_writebacks`].
    ///
    /// This only marks the routing; the broker itself must be
    /// installed (and taken back) around every tick via
    /// [`MemorySystem::install_shared_llc`] /
    /// [`MemorySystem::take_shared_llc`] — an access while attached
    /// but not installed is a chip sequencing bug and panics.
    pub fn attach_shared_llc(&mut self, core: u32) {
        self.shared = Some(SharedAttachment { llc: None, core });
    }

    /// Hands this core the chip's LLC broker for the duration of one
    /// tick (a `Box` move, no lock).
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy is not attached, or a broker is already
    /// installed (the chip failed to take it back).
    pub fn install_shared_llc(&mut self, llc: Box<SharedLlc>) {
        let sh = self.shared.as_mut().expect("install_shared_llc on an unattached hierarchy");
        assert!(sh.llc.is_none(), "shared LLC already installed (missing take_shared_llc)");
        sh.llc = Some(llc);
    }

    /// Takes the chip's LLC broker back after this core's tick.
    ///
    /// # Panics
    ///
    /// Panics if no broker is installed.
    pub fn take_shared_llc(&mut self) -> Box<SharedLlc> {
        self.shared
            .as_mut()
            .and_then(|sh| sh.llc.take())
            .expect("take_shared_llc with no broker installed")
    }

    /// Enables per-line prefetch-lifecycle telemetry, retaining the
    /// last `capacity` completed lifecycles. The reported [`MemStats`]
    /// are bit-identical with telemetry on or off — the tracker only
    /// observes the bookkeeping the hierarchy already performs.
    pub fn enable_telemetry(&mut self, capacity: usize) {
        self.telemetry = Some(Box::new(PfTelemetry::new(capacity)));
    }

    /// The prefetch-lifecycle tracker, if enabled.
    pub fn telemetry(&self) -> Option<&PfTelemetry> {
        self.telemetry.as_deref()
    }

    /// Arms the fault-injection chaos layer: every subsequent
    /// speculative prefetch is independently dropped with probability
    /// `drop_p` or delayed by ~200 cycles with probability `delay_p`
    /// (seeded, so runs are reproducible). Demand traffic is never
    /// touched.
    pub fn set_prefetch_chaos(&mut self, drop_p: f64, delay_p: f64, seed: u64) {
        self.chaos = Some(PrefetchChaos {
            drop_p,
            delay_p,
            delay_cycles: 200,
            rng: SplitMix64::new(seed ^ 0xC4A0_5F11),
        });
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// MSHR occupancy integral (for the MLP figure).
    pub fn mshr_occupancy_integral(&self) -> u64 {
        self.mshr.occupancy_integral()
    }

    /// Number of outstanding L1-D misses at `now`.
    pub fn outstanding_misses(&mut self, now: u64) -> usize {
        self.mshr.expire(now);
        self.mshr.outstanding()
    }

    /// Whether an MSHR entry is free at `now` (VR's gather issue gate).
    pub fn mshr_free(&mut self, now: u64) -> bool {
        self.mshr.expire(now);
        self.mshr.has_free()
    }

    /// Whether the line containing `addr` is resident in the L1-D.
    pub fn in_l1(&self, addr: u64) -> bool {
        self.l1d.contains(addr)
    }

    /// Performs a demand or speculative access at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when the access misses the L1 and no MSHR
    /// entry is free. Demand accesses should be retried on a later
    /// cycle; prefetches should be dropped.
    pub fn access(
        &mut self,
        addr: u64,
        kind: Access,
        req: Requestor,
        pc: u64,
        now: u64,
    ) -> Result<AccessOutcome, MshrFull> {
        let mut now = now;
        // Fault injection on *speculative* traffic only: a dropped
        // access looks to the requestor exactly like a full MSHR file
        // (which every speculative path already tolerates); a delayed
        // one simply issues late. Demand traffic is never touched.
        if req.is_prefetch() {
            if let Some(chaos) = &mut self.chaos {
                if chaos.rng.chance(chaos.drop_p) {
                    self.stats.pf_dropped_fault += 1;
                    return Err(MshrFull);
                }
                if chaos.rng.chance(chaos.delay_p) {
                    now += chaos.delay_cycles;
                    self.stats.pf_delayed_fault += 1;
                }
            }
        }
        let mut outcome = self.do_access(addr, kind, req, pc, now)?;
        if self.cfg.oracle && req == Requestor::Main && kind == Access::Load {
            outcome.ready_at = now + self.cfg.l1d.latency;
        }
        Ok(outcome)
    }

    fn do_access(
        &mut self,
        addr: u64,
        kind: Access,
        req: Requestor,
        pc: u64,
        now: u64,
    ) -> Result<AccessOutcome, MshrFull> {
        let _ = pc;
        let la = self.l1d.line_addr(addr);
        self.mshr.expire(now);

        let is_demand = req == Requestor::Main;
        if !is_demand && kind == Access::Store {
            // Speculative requestors must never write: runahead is
            // architecturally invisible only if its stores stay out of
            // the hierarchy. The `checked` invariant layer asserts this
            // counter remains 0.
            self.stats.spec_stores += 1;
        }
        if is_demand {
            match kind {
                Access::Load => self.stats.demand_loads += 1,
                Access::Store => self.stats.demand_stores += 1,
            }
        }

        // 1. Merge with an outstanding miss to the same line.
        if let Some(ready) = self.mshr.pending(la) {
            let owner = self.mshr.requestor_of(la);
            if is_demand {
                if kind == Access::Load {
                    self.stats.load_hits[MemStats::level_idx(HitLevel::Dram)] += 1;
                    self.stats.load_merges += 1;
                }
                if let Some(owner) = owner {
                    if owner.is_prefetch() {
                        // The prefetch was issued but did not complete
                        // in time: "off-chip" timeliness.
                        if owner == Requestor::Runahead {
                            self.stats.timeliness
                                [MemStats::timeliness_idx(TimelinessLevel::OffChip)] += 1;
                        }
                        self.stats.pf_used[MemStats::req_idx(owner)] += 1;
                        if let Some(t) = &mut self.telemetry {
                            t.on_use(la, TimelinessLevel::OffChip, now);
                        }
                        // Transfer line ownership to the demand stream
                        // so later touches count as plain hits.
                        if let Some(line) = self.l1d.lookup(la) {
                            line.prefetch_src = None;
                        }
                    }
                }
            }
            if kind == Access::Store {
                if let Some(line) = self.l1d.lookup(la) {
                    line.dirty = true;
                }
            }
            return Ok(AccessOutcome {
                ready_at: ready.max(now + self.cfg.l1d.latency),
                hit: HitLevel::Dram,
                prefetched_by: owner.filter(|o| o.is_prefetch()),
            });
        }

        // 2. L1 hit.
        if let Some(line) = self.l1d.lookup(la) {
            if kind == Access::Store {
                line.dirty = true;
            }
            let prefetched_by = line.prefetch_src;
            if is_demand {
                if let Some(src) = line.prefetch_src.take() {
                    self.stats.pf_used[MemStats::req_idx(src)] += 1;
                    if src == Requestor::Runahead {
                        self.stats.timeliness[MemStats::timeliness_idx(TimelinessLevel::L1)] += 1;
                    }
                    if let Some(t) = &mut self.telemetry {
                        t.on_use(la, TimelinessLevel::L1, now);
                    }
                }
                if kind == Access::Load {
                    self.stats.load_hits[MemStats::level_idx(HitLevel::L1)] += 1;
                }
            }
            return Ok(AccessOutcome {
                ready_at: now + self.cfg.l1d.latency,
                hit: HitLevel::L1,
                prefetched_by,
            });
        }

        // L1 miss from here on: an MSHR entry is required.
        if !self.mshr.has_free() {
            if req.is_prefetch() {
                self.stats.pf_dropped_mshr += 1;
            }
            return Err(MshrFull);
        }

        let l1_lat = self.cfg.l1d.latency;
        let l2_lat = self.cfg.l2.latency;
        let l3_lat = self.cfg.l3.latency;

        // 3. L2 hit.
        if let Some(line) = self.l2.lookup(la) {
            let was_pf = line.prefetch_src;
            let dirty = line.dirty;
            if is_demand {
                if let Some(src) = line.prefetch_src.take() {
                    self.stats.pf_used[MemStats::req_idx(src)] += 1;
                    if src == Requestor::Runahead {
                        self.stats.timeliness[MemStats::timeliness_idx(TimelinessLevel::L2)] += 1;
                    }
                    if let Some(t) = &mut self.telemetry {
                        t.on_use(la, TimelinessLevel::L2, now);
                    }
                }
                if kind == Access::Load {
                    self.stats.load_hits[MemStats::level_idx(HitLevel::L2)] += 1;
                }
            }
            let ready = now + l1_lat + l2_lat;
            self.mshr.allocate(la, now, ready, req);
            if req.is_prefetch() {
                self.stats.pf_issued[MemStats::req_idx(req)] += 1;
                if let Some(t) = &mut self.telemetry {
                    t.on_issue(la, req, now, ready, HitLevel::L2);
                }
            }
            self.fill_l1(la, kind, req, dirty, now);
            return Ok(AccessOutcome { ready_at: ready, hit: HitLevel::L2, prefetched_by: was_pf });
        }

        // 4'/5' (chip runs only). With a shared LLC attached, an L2
        // miss crosses the chip interconnect after the private L1+L2
        // lookup; the shared broker replaces steps 4 and 5 entirely.
        // The broker access is an uncontended `&mut` — the chip
        // installs the owned broker around this core's tick (computed
        // in its own scope so the `self.shared` borrow ends before the
        // outcome is applied to the private structures below).
        let shared_outcome = match self.shared.as_mut() {
            None => None,
            Some(sh) => {
                let core = sh.core;
                let llc = sh
                    .llc
                    .as_mut()
                    .expect("shared-LLC access outside a chip core-step (broker not installed)");
                Some(llc.access_line(core, la, now + l1_lat + l2_lat))
            }
        };
        if let Some(outcome) = shared_outcome {
            return match outcome {
                SharedOutcome::Hit { ready_at } => {
                    if is_demand && kind == Access::Load {
                        self.stats.load_hits[MemStats::level_idx(HitLevel::L3)] += 1;
                    }
                    self.mshr.allocate(la, now, ready_at, req);
                    if req.is_prefetch() {
                        self.stats.pf_issued[MemStats::req_idx(req)] += 1;
                        if let Some(t) = &mut self.telemetry {
                            t.on_issue(la, req, now, ready_at, HitLevel::L3);
                        }
                    }
                    // The shared L3 tracks no per-core prefetch
                    // ownership, so a shared hit never reports
                    // `prefetched_by` and the L3 timeliness bucket is
                    // unreachable in chip runs (DESIGN.md §16).
                    self.fill_l2_flagged(la, None, false, now);
                    self.fill_l1(la, kind, req, false, now);
                    Ok(AccessOutcome { ready_at, hit: HitLevel::L3, prefetched_by: None })
                }
                SharedOutcome::Miss { ready_at } => {
                    self.mshr.allocate(la, now, ready_at, req);
                    self.stats.dram_reads[MemStats::req_idx(req)] += 1;
                    if req.is_prefetch() {
                        self.stats.pf_issued[MemStats::req_idx(req)] += 1;
                        if let Some(t) = &mut self.telemetry {
                            t.on_issue(la, req, now, ready_at, HitLevel::Dram);
                        }
                    }
                    if is_demand && kind == Access::Load {
                        self.stats.load_hits[MemStats::level_idx(HitLevel::Dram)] += 1;
                    }
                    let pf_src = req.is_prefetch().then_some(req);
                    self.fill_l2_flagged(la, None, kind == Access::Store, now);
                    self.fill_l1_flagged(la, pf_src, kind == Access::Store, now);
                    Ok(AccessOutcome { ready_at, hit: HitLevel::Dram, prefetched_by: None })
                }
                SharedOutcome::Reject => {
                    if req.is_prefetch() {
                        self.stats.pf_dropped_mshr += 1;
                    }
                    Err(MshrFull)
                }
            };
        }

        // 4. L3 hit.
        if let Some(line) = self.l3.lookup(la) {
            let was_pf = line.prefetch_src;
            let dirty = line.dirty;
            if is_demand {
                if let Some(src) = line.prefetch_src.take() {
                    self.stats.pf_used[MemStats::req_idx(src)] += 1;
                    if src == Requestor::Runahead {
                        self.stats.timeliness[MemStats::timeliness_idx(TimelinessLevel::L3)] += 1;
                    }
                    if let Some(t) = &mut self.telemetry {
                        t.on_use(la, TimelinessLevel::L3, now);
                    }
                }
                if kind == Access::Load {
                    self.stats.load_hits[MemStats::level_idx(HitLevel::L3)] += 1;
                }
            }
            let ready = now + l1_lat + l2_lat + l3_lat;
            self.mshr.allocate(la, now, ready, req);
            if req.is_prefetch() {
                self.stats.pf_issued[MemStats::req_idx(req)] += 1;
                if let Some(t) = &mut self.telemetry {
                    t.on_issue(la, req, now, ready, HitLevel::L3);
                }
            }
            // Prefetch ownership is tracked on the L1 copy only; the
            // L2 copy inherits it on eviction (fill_l1_flagged), which
            // is what the timeliness L2/L3 buckets mean.
            self.fill_l2_flagged(la, None, dirty, now);
            self.fill_l1(la, kind, req, dirty, now);
            return Ok(AccessOutcome { ready_at: ready, hit: HitLevel::L3, prefetched_by: was_pf });
        }

        // 5. DRAM.
        let lookup_done = now + l1_lat + l2_lat + l3_lat;
        let ready = self.dram.read_line(lookup_done);
        self.mshr.allocate(la, now, ready, req);
        self.stats.dram_reads[MemStats::req_idx(req)] += 1;
        if req.is_prefetch() {
            self.stats.pf_issued[MemStats::req_idx(req)] += 1;
            if let Some(t) = &mut self.telemetry {
                t.on_issue(la, req, now, ready, HitLevel::Dram);
            }
        }
        if is_demand && kind == Access::Load {
            self.stats.load_hits[MemStats::level_idx(HitLevel::Dram)] += 1;
        }
        let pf_src = req.is_prefetch().then_some(req);
        // Flag only the L1 copy (the level runahead prefetches into);
        // lower-level copies inherit the flag on eviction.
        self.fill_l3(la, None, now);
        self.fill_l2_flagged(la, None, kind == Access::Store, now);
        self.fill_l1_flagged(la, pf_src, kind == Access::Store, now);
        Ok(AccessOutcome { ready_at: ready, hit: HitLevel::Dram, prefetched_by: None })
    }

    fn fill_l1(&mut self, la: u64, kind: Access, req: Requestor, dirty: bool, now: u64) {
        let pf_src = req.is_prefetch().then_some(req);
        self.fill_l1_flagged(la, pf_src, kind == Access::Store || dirty, now);
    }

    fn fill_l1_flagged(&mut self, la: u64, pf_src: Option<Requestor>, dirty: bool, now: u64) {
        if let Some(victim) = self.l1d.fill(la, pf_src) {
            // The victim lives on in L2: carry its dirtiness and its
            // not-yet-consumed prefetch ownership down with it (this
            // is what makes the timeliness L2/L3 buckets mean
            // "prefetched, but evicted before use").
            match self.l2.lookup(victim.line_addr) {
                Some(line) => {
                    line.dirty |= victim.dirty;
                    if line.prefetch_src.is_none() {
                        line.prefetch_src = victim.prefetch_src;
                    }
                }
                None => self.fill_l2_flagged_src(
                    victim.line_addr,
                    victim.prefetch_src,
                    victim.dirty,
                    now,
                ),
            }
        }
        if dirty {
            if let Some(line) = self.l1d.lookup(la) {
                line.dirty = true;
            }
        }
    }

    fn fill_l2_flagged(&mut self, la: u64, pf_src: Option<Requestor>, dirty: bool, now: u64) {
        self.fill_l2_flagged_src(la, pf_src, dirty, now);
    }

    fn fill_l2_flagged_src(&mut self, la: u64, pf_src: Option<Requestor>, dirty: bool, now: u64) {
        if let Some(victim) = self.l2.fill(la, pf_src) {
            match self.l3.lookup(victim.line_addr) {
                Some(line) => {
                    line.dirty |= victim.dirty;
                    if line.prefetch_src.is_none() {
                        line.prefetch_src = victim.prefetch_src;
                    }
                }
                None => {
                    let shared = if let Some(sh) = self.shared.as_mut() {
                        // Chip run: the victim leaves the private
                        // hierarchy into the shared LLC (merge or, if
                        // dirty, install). Prefetch ownership does not
                        // cross the boundary — its lifecycle ends here.
                        let core = sh.core;
                        sh.llc
                            .as_mut()
                            .expect("shared-LLC victim outside a chip core-step")
                            .fill_victim(core, victim.line_addr, victim.dirty);
                        true
                    } else {
                        false
                    };
                    if shared {
                        if victim.prefetch_src.is_some() {
                            if let Some(t) = &mut self.telemetry {
                                t.on_evict(victim.line_addr, now);
                            }
                        }
                    } else if victim.dirty {
                        self.fill_l3_dirty(victim.line_addr, victim.prefetch_src, now);
                    } else if victim.prefetch_src.is_some() {
                        // A clean, still-flagged victim with no L3 copy
                        // is silently dropped: the prefetched line has
                        // left the hierarchy without ever being used.
                        if let Some(t) = &mut self.telemetry {
                            t.on_evict(victim.line_addr, now);
                        }
                    }
                }
            }
        }
        if dirty {
            if let Some(line) = self.l2.lookup(la) {
                line.dirty = true;
            }
        }
    }

    fn fill_l3(&mut self, la: u64, pf_src: Option<Requestor>, now: u64) {
        if let Some(victim) = self.l3.fill(la, pf_src) {
            if victim.dirty {
                self.dram.write_line(0);
                self.stats.dram_writebacks += 1;
            }
            if victim.prefetch_src.is_some() {
                // The still-flagged L3 victim is the last copy (the
                // flag only reaches L3 after the L1/L2 copies were
                // themselves evicted): unused-prefetch lifecycle ends.
                if let Some(t) = &mut self.telemetry {
                    t.on_evict(victim.line_addr, now);
                }
            }
        }
    }

    fn fill_l3_dirty(&mut self, la: u64, pf_src: Option<Requestor>, now: u64) {
        self.fill_l3(la, pf_src, now);
        if let Some(line) = self.l3.lookup(la) {
            line.dirty = true;
        }
    }

    /// Issues a (drop-on-full) prefetch for the line containing `addr`.
    /// Returns `true` if a new fetch was actually started.
    pub fn prefetch(&mut self, addr: u64, req: Requestor, now: u64) -> bool {
        debug_assert!(req.is_prefetch(), "prefetch requires a prefetching requestor");
        let mut now = now;
        if let Some(chaos) = &mut self.chaos {
            if chaos.rng.chance(chaos.drop_p) {
                self.stats.pf_dropped_fault += 1;
                return false;
            }
            if chaos.rng.chance(chaos.delay_p) {
                now += chaos.delay_cycles;
                self.stats.pf_delayed_fault += 1;
            }
        }
        let la = self.l1d.line_addr(addr);
        self.mshr.expire(now);
        if self.l1d.contains(la) || self.mshr.is_pending(la) {
            return false;
        }
        // Reserve the last two MSHR entries for demand misses so that
        // prefetch storms cannot starve the main thread.
        if self.mshr.outstanding() + Self::DEMAND_RESERVED_MSHRS > self.config().mshrs {
            self.stats.pf_dropped_mshr += 1;
            return false;
        }
        self.do_access(addr, Access::Load, req, 0, now).is_ok()
    }

    /// Trains the hardware prefetchers on a main-thread demand load
    /// and lets them issue their prefetches. `peek` reads the current
    /// functional memory contents (used by IMP to resolve future index
    /// values, modelling its fetch-then-compute pipeline).
    pub fn train_prefetchers(
        &mut self,
        pc: u64,
        addr: u64,
        value: u64,
        now: u64,
        peek: impl Fn(u64) -> u64,
    ) {
        if self.cfg.stride_prefetcher {
            for pf_addr in self.stride.train(pc, addr) {
                self.prefetch(pf_addr, Requestor::Stride, now);
            }
        } else {
            // The stride *detector* still trains (VR needs it even
            // when the prefetcher itself is disabled in ablations).
            let _ = self.stride.train(pc, addr);
        }
        if self.cfg.imp {
            match self.stride.detector().confident_stride(pc) {
                Some(stride) => {
                    self.imp.observe_index_value(pc, value);
                    for pf in self.imp.prefetches(pc, addr, stride) {
                        // IMP first fetches the future index element…
                        self.prefetch(pf.index_addr, Requestor::Imp, now);
                        // …then computes and fetches the target. The
                        // value is peeked functionally; timing-wise the
                        // target fetch is charged the index line's L1
                        // latency as issue delay.
                        let v = peek(pf.index_addr);
                        self.prefetch(pf.target(v), Requestor::Imp, now + self.cfg.l1d.latency);
                    }
                }
                None => self.imp.observe_load(pc, addr),
            }
        }
    }

    /// The stride detector state (shared with Vector Runahead's
    /// striding-load detection).
    pub fn stride_detector(&self) -> &crate::stride::StrideDetector {
        self.stride.detector()
    }

    /// Total DRAM lines transferred (reads + write-backs).
    pub fn dram_lines_transferred(&self) -> u64 {
        self.dram.lines_transferred()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig::tiny_for_tests())
    }

    #[test]
    fn miss_then_hit_latency() {
        let mut ms = sys();
        let r = ms.access(0x1000, Access::Load, Requestor::Main, 7, 0).unwrap();
        assert_eq!(r.hit, HitLevel::Dram);
        // 4+8+30 lookup + 200 DRAM = 242.
        assert_eq!(r.ready_at, 242);
        let r2 = ms.access(0x1000, Access::Load, Requestor::Main, 7, 300).unwrap();
        assert_eq!(r2.hit, HitLevel::L1);
        assert_eq!(r2.ready_at, 304);
    }

    #[test]
    fn same_line_misses_merge() {
        let mut ms = sys();
        let r1 = ms.access(0x1000, Access::Load, Requestor::Main, 7, 0).unwrap();
        let r2 = ms.access(0x1008, Access::Load, Requestor::Main, 8, 1).unwrap();
        assert_eq!(r2.ready_at, r1.ready_at);
        assert_eq!(ms.stats().load_merges, 1);
        assert_eq!(ms.stats().dram_reads_total(), 1);
    }

    #[test]
    fn mshr_exhaustion_rejects_demand() {
        let mut ms = sys(); // 4 MSHRs
        for i in 0..4u64 {
            ms.access(0x1000 + i * 64, Access::Load, Requestor::Main, i, 0).unwrap();
        }
        assert!(matches!(ms.access(0x9000, Access::Load, Requestor::Main, 99, 0), Err(MshrFull)));
        // After the fills return, capacity frees up.
        assert!(ms.access(0x9000, Access::Load, Requestor::Main, 99, 500).is_ok());
    }

    #[test]
    fn l2_and_l3_capacity_hits() {
        let mut ms = sys();
        // Fill L1 (512 B = 8 lines) beyond capacity with 16 lines.
        for i in 0..16u64 {
            ms.access(i * 64, Access::Load, Requestor::Main, 1, i * 1000).unwrap();
        }
        // Line 0 was evicted from L1 (LRU) but lives in L2.
        let r = ms.access(0, Access::Load, Requestor::Main, 1, 100_000).unwrap();
        assert_eq!(r.hit, HitLevel::L2);
        assert_eq!(r.ready_at, 100_000 + 12);
    }

    #[test]
    fn dirty_eviction_reaches_dram_writeback() {
        let mut ms = sys();
        // Store to a line, then stream enough lines through to evict
        // it from every level (L3 holds 128 lines in tiny config).
        ms.access(0, Access::Store, Requestor::Main, 1, 0).unwrap();
        for i in 1..1000u64 {
            ms.access(i * 64, Access::Load, Requestor::Main, 1, i * 300).unwrap();
        }
        assert!(ms.stats().dram_writebacks > 0, "dirty line must be written back");
    }

    #[test]
    fn runahead_prefetch_timeliness_l1() {
        let mut ms = sys();
        assert!(ms.prefetch(0x2000, Requestor::Runahead, 0));
        // Main thread arrives after the fill completes: L1 timely hit.
        let r = ms.access(0x2000, Access::Load, Requestor::Main, 5, 400).unwrap();
        assert_eq!(r.hit, HitLevel::L1);
        assert_eq!(r.prefetched_by, Some(Requestor::Runahead));
        assert_eq!(ms.stats().timeliness[0], 1); // L1 bucket
        assert_eq!(ms.stats().pf_used[MemStats::req_idx(Requestor::Runahead)], 1);
        // Second touch is a plain hit, not double-counted.
        ms.access(0x2000, Access::Load, Requestor::Main, 5, 500).unwrap();
        assert_eq!(ms.stats().pf_used[MemStats::req_idx(Requestor::Runahead)], 1);
    }

    #[test]
    fn runahead_prefetch_in_transit_counts_off_chip() {
        let mut ms = sys();
        ms.prefetch(0x2000, Requestor::Runahead, 0);
        // Main thread arrives while the line is still in flight.
        let r = ms.access(0x2000, Access::Load, Requestor::Main, 5, 10).unwrap();
        assert_eq!(r.hit, HitLevel::Dram);
        assert_eq!(ms.stats().timeliness[3], 1); // off-chip bucket
    }

    #[test]
    fn duplicate_prefetches_are_suppressed() {
        let mut ms = sys();
        assert!(ms.prefetch(0x2000, Requestor::Runahead, 0));
        assert!(!ms.prefetch(0x2000, Requestor::Runahead, 1), "pending line");
        assert!(!ms.prefetch(0x2000, Requestor::Runahead, 500), "resident line");
        assert_eq!(ms.stats().dram_reads_by(Requestor::Runahead), 1);
    }

    #[test]
    fn stride_prefetcher_hides_streaming_misses() {
        let mut cfg = MemConfig::tiny_for_tests();
        cfg.stride_prefetcher = true;
        cfg.mshrs = 8; // leave headroom beyond the demand reservation
        let mut ms = MemorySystem::new(cfg);
        let mut now = 0u64;
        let mut late_misses = 0;
        for i in 0..200u64 {
            let r = loop {
                match ms.access(0x10_000 + i * 64, Access::Load, Requestor::Main, 42, now) {
                    Ok(r) => break r,
                    Err(MshrFull) => now += 10,
                }
            };
            ms.train_prefetchers(42, 0x10_000 + i * 64, 0, now, |_| 0);
            if i >= 50 && r.hit == HitLevel::Dram {
                late_misses += 1;
            }
            now = r.ready_at + 10;
        }
        assert!(
            late_misses < 40,
            "stride prefetcher should cover most of a streaming walk, {late_misses} late misses"
        );
        assert!(ms.stats().pf_used[MemStats::req_idx(Requestor::Stride)] > 50);
    }

    #[test]
    fn oracle_mode_returns_l1_latency_for_demand_loads() {
        let mut ms = MemorySystem::new(MemConfig { oracle: true, ..MemConfig::tiny_for_tests() });
        let r = ms.access(0x7000, Access::Load, Requestor::Main, 1, 0).unwrap();
        assert_eq!(r.ready_at, 4);
        // Traffic is still accounted.
        assert_eq!(ms.stats().dram_reads_total(), 1);
        // Non-demand accesses are not accelerated.
        let r2 = ms.access(0x8000, Access::Load, Requestor::Runahead, 1, 0).unwrap();
        assert!(r2.ready_at > 200);
    }

    #[test]
    fn prefetch_chaos_drops_are_counted_and_deterministic() {
        let run = |seed: u64| {
            let mut ms = sys();
            ms.set_prefetch_chaos(0.5, 0.0, seed);
            for i in 0..64u64 {
                ms.prefetch(0x10_000 + i * 64, Requestor::Runahead, i * 1000);
            }
            ms.stats().pf_dropped_fault
        };
        let a = run(42);
        assert!(a > 0, "with p=0.5 over 64 tries some prefetch must drop");
        assert!(a < 64, "not every prefetch may drop");
        assert_eq!(a, run(42), "same seed, same drops");
    }

    #[test]
    fn prefetch_chaos_delay_still_fetches_the_line() {
        let mut ms = sys();
        ms.set_prefetch_chaos(0.0, 1.0, 7);
        assert!(ms.prefetch(0x2000, Requestor::Runahead, 0));
        assert_eq!(ms.stats().pf_delayed_fault, 1);
        // The line still arrives, just ~200 cycles late.
        let r = ms.access(0x2000, Access::Load, Requestor::Main, 5, 1000).unwrap();
        assert_eq!(r.hit, HitLevel::L1);
    }

    #[test]
    fn speculative_stores_are_counted() {
        let mut ms = sys();
        assert_eq!(ms.stats().spec_stores, 0);
        ms.access(0x3000, Access::Store, Requestor::Runahead, 1, 0).unwrap();
        assert_eq!(ms.stats().spec_stores, 1);
        // Demand stores do not count.
        ms.access(0x4000, Access::Store, Requestor::Main, 1, 0).unwrap();
        assert_eq!(ms.stats().spec_stores, 1);
    }

    #[test]
    fn outstanding_misses_tracks_mshr_occupancy() {
        let mut ms = sys();
        ms.access(0x1000, Access::Load, Requestor::Main, 1, 0).unwrap();
        ms.access(0x2000, Access::Load, Requestor::Main, 2, 0).unwrap();
        assert_eq!(ms.outstanding_misses(10), 2);
        assert_eq!(ms.outstanding_misses(10_000), 0);
    }
}
