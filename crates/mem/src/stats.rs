//! Memory-system statistics feeding the paper's figures.

use crate::hierarchy::HitLevel;
use crate::Requestor;

/// Where a main-thread access found a runahead-prefetched line — the
/// timeliness metric (the paper's Fig. "Timeliness").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimelinessLevel {
    /// Found in the L1 data cache.
    L1,
    /// Evicted to (or only filled into) L2.
    L2,
    /// Evicted to L3.
    L3,
    /// Still in transfer from memory when the main thread arrived
    /// (merged with the outstanding runahead miss).
    OffChip,
}

/// Counters maintained by [`crate::MemorySystem`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MemStats {
    /// Main-thread demand loads.
    pub demand_loads: u64,
    /// Main-thread demand stores.
    pub demand_stores: u64,
    /// Main-thread demand loads by the level that served them
    /// (indexed by [`HitLevel`] discriminant: L1, L2, L3, DRAM).
    pub load_hits: [u64; 4],
    /// Demand loads that merged with an already-outstanding miss.
    pub load_merges: u64,

    /// DRAM line reads attributed to each requestor
    /// (Main, Runahead, Stride, IMP).
    pub dram_reads: [u64; 4],
    /// Dirty-line write-backs to DRAM.
    pub dram_writebacks: u64,

    /// Prefetched lines issued per prefetching requestor.
    pub pf_issued: [u64; 4],
    /// Prefetched lines later touched by a demand access, per
    /// requestor.
    pub pf_used: [u64; 4],
    /// Prefetches dropped because the MSHR file was full.
    pub pf_dropped_mshr: u64,
    /// Prefetches dropped by injected faults (the fault-injection
    /// harness's drop-prefetch chaos; always 0 in normal runs).
    pub pf_dropped_fault: u64,
    /// Prefetches delayed by injected faults (always 0 in normal
    /// runs).
    pub pf_delayed_fault: u64,

    /// Stores issued by a *speculative* requestor (runahead or a
    /// prefetcher). Runahead is architecturally invisible only if its
    /// stores never reach the hierarchy, so the `checked` invariant
    /// layer asserts this counter stays 0.
    pub spec_stores: u64,

    /// Timeliness histogram for runahead-prefetched lines at first
    /// demand touch (L1 / L2 / L3 / off-chip-in-transfer).
    pub timeliness: [u64; 4],
}

impl MemStats {
    /// Index of `req` in the per-requestor counter arrays
    /// (`dram_reads`, `pf_issued`, `pf_used`).
    pub fn req_idx(req: Requestor) -> usize {
        match req {
            Requestor::Main => 0,
            Requestor::Runahead => 1,
            Requestor::Stride => 2,
            Requestor::Imp => 3,
        }
    }

    pub(crate) fn level_idx(level: HitLevel) -> usize {
        match level {
            HitLevel::L1 => 0,
            HitLevel::L2 => 1,
            HitLevel::L3 => 2,
            HitLevel::Dram => 3,
        }
    }

    pub(crate) fn timeliness_idx(level: TimelinessLevel) -> usize {
        match level {
            TimelinessLevel::L1 => 0,
            TimelinessLevel::L2 => 1,
            TimelinessLevel::L3 => 2,
            TimelinessLevel::OffChip => 3,
        }
    }

    /// DRAM reads by `req`.
    pub fn dram_reads_by(&self, req: Requestor) -> u64 {
        self.dram_reads[Self::req_idx(req)]
    }

    /// Total DRAM line reads.
    pub fn dram_reads_total(&self) -> u64 {
        self.dram_reads.iter().sum()
    }

    /// Demand loads served at `level`.
    pub fn loads_served_at(&self, level: HitLevel) -> u64 {
        self.load_hits[Self::level_idx(level)]
    }

    /// LLC misses per kilo-instruction for `instructions` retired
    /// instructions (main-thread demand misses only).
    pub fn llc_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.loads_served_at(HitLevel::Dram) as f64 * 1000.0 / instructions as f64
    }

    /// Prefetch accuracy of `req`: used / issued.
    pub fn pf_accuracy(&self, req: Requestor) -> f64 {
        let i = Self::req_idx(req);
        if self.pf_issued[i] == 0 {
            return 0.0;
        }
        self.pf_used[i] as f64 / self.pf_issued[i] as f64
    }

    /// Timeliness fractions (L1, L2, L3, off-chip) over all
    /// runahead-prefetched lines that the main thread touched.
    pub fn timeliness_fractions(&self) -> [f64; 4] {
        let total: u64 = self.timeliness.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        self.timeliness.map(|c| c as f64 / total as f64)
    }

    /// Counters accumulated since `earlier` (saturating per field).
    ///
    /// Written with *exhaustive destructuring* — no `..` rest pattern —
    /// so adding a counter to `MemStats` without deciding how it
    /// subtracts is a compile error, not a silently-zero delta.
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        fn sub(a: u64, b: u64) -> u64 {
            a.saturating_sub(b)
        }
        fn sub4(a: [u64; 4], b: [u64; 4]) -> [u64; 4] {
            [sub(a[0], b[0]), sub(a[1], b[1]), sub(a[2], b[2]), sub(a[3], b[3])]
        }
        // Both sides destructured exhaustively: a new field must be
        // named here (twice) before this compiles again.
        let MemStats {
            demand_loads,
            demand_stores,
            load_hits,
            load_merges,
            dram_reads,
            dram_writebacks,
            pf_issued,
            pf_used,
            pf_dropped_mshr,
            pf_dropped_fault,
            pf_delayed_fault,
            spec_stores,
            timeliness,
        } = *self;
        let MemStats {
            demand_loads: e_demand_loads,
            demand_stores: e_demand_stores,
            load_hits: e_load_hits,
            load_merges: e_load_merges,
            dram_reads: e_dram_reads,
            dram_writebacks: e_dram_writebacks,
            pf_issued: e_pf_issued,
            pf_used: e_pf_used,
            pf_dropped_mshr: e_pf_dropped_mshr,
            pf_dropped_fault: e_pf_dropped_fault,
            pf_delayed_fault: e_pf_delayed_fault,
            spec_stores: e_spec_stores,
            timeliness: e_timeliness,
        } = *earlier;
        MemStats {
            demand_loads: sub(demand_loads, e_demand_loads),
            demand_stores: sub(demand_stores, e_demand_stores),
            load_hits: sub4(load_hits, e_load_hits),
            load_merges: sub(load_merges, e_load_merges),
            dram_reads: sub4(dram_reads, e_dram_reads),
            dram_writebacks: sub(dram_writebacks, e_dram_writebacks),
            pf_issued: sub4(pf_issued, e_pf_issued),
            pf_used: sub4(pf_used, e_pf_used),
            pf_dropped_mshr: sub(pf_dropped_mshr, e_pf_dropped_mshr),
            pf_dropped_fault: sub(pf_dropped_fault, e_pf_dropped_fault),
            pf_delayed_fault: sub(pf_delayed_fault, e_pf_delayed_fault),
            spec_stores: sub(spec_stores, e_spec_stores),
            timeliness: sub4(timeliness, e_timeliness),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_math() {
        let mut s = MemStats::default();
        s.load_hits[MemStats::level_idx(HitLevel::Dram)] = 50;
        assert_eq!(s.llc_mpki(1000), 50.0);
        assert_eq!(s.llc_mpki(0), 0.0);
    }

    #[test]
    fn accuracy_math() {
        let mut s = MemStats::default();
        s.pf_issued[MemStats::req_idx(Requestor::Runahead)] = 10;
        s.pf_used[MemStats::req_idx(Requestor::Runahead)] = 7;
        assert_eq!(s.pf_accuracy(Requestor::Runahead), 0.7);
        assert_eq!(s.pf_accuracy(Requestor::Stride), 0.0);
    }

    #[test]
    fn timeliness_fractions_sum_to_one() {
        let s = MemStats { timeliness: [6, 2, 1, 1], ..Default::default() };
        let f = s.timeliness_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f[0], 0.6);
    }

    #[test]
    fn empty_timeliness_is_all_zero() {
        assert_eq!(MemStats::default().timeliness_fractions(), [0.0; 4]);
    }

    #[test]
    fn delta_of_default_round_trips() {
        let s = MemStats {
            demand_loads: 5,
            demand_stores: 4,
            load_hits: [1, 2, 3, 4],
            load_merges: 9,
            dram_reads: [4, 3, 2, 1],
            dram_writebacks: 8,
            pf_issued: [0, 7, 6, 5],
            pf_used: [0, 5, 4, 3],
            pf_dropped_mshr: 2,
            pf_dropped_fault: 1,
            pf_delayed_fault: 1,
            spec_stores: 1,
            timeliness: [9, 8, 7, 6],
        };
        assert_eq!(s.delta(&MemStats::default()), s, "x - 0 == x");
        assert_eq!(s.delta(&s), MemStats::default(), "x - x == 0");
    }

    #[test]
    fn delta_subtracts_per_field() {
        let a = MemStats { demand_loads: 10, load_hits: [5, 5, 5, 5], ..Default::default() };
        let b = MemStats { demand_loads: 4, load_hits: [1, 2, 3, 4], ..Default::default() };
        let d = a.delta(&b);
        assert_eq!(d.demand_loads, 6);
        assert_eq!(d.load_hits, [4, 3, 2, 1]);
        // Saturating, never wrapping, if counters were ever reset.
        assert_eq!(b.delta(&a).demand_loads, 0);
    }
}
