//! Memory-system statistics feeding the paper's figures.

use crate::hierarchy::HitLevel;
use crate::Requestor;

/// Where a main-thread access found a runahead-prefetched line — the
/// timeliness metric (the paper's Fig. "Timeliness").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimelinessLevel {
    /// Found in the L1 data cache.
    L1,
    /// Evicted to (or only filled into) L2.
    L2,
    /// Evicted to L3.
    L3,
    /// Still in transfer from memory when the main thread arrived
    /// (merged with the outstanding runahead miss).
    OffChip,
}

/// Counters maintained by [`crate::MemorySystem`].
#[derive(Clone, Copy, Default, Debug)]
pub struct MemStats {
    /// Main-thread demand loads.
    pub demand_loads: u64,
    /// Main-thread demand stores.
    pub demand_stores: u64,
    /// Main-thread demand loads by the level that served them
    /// (indexed by [`HitLevel`] discriminant: L1, L2, L3, DRAM).
    pub load_hits: [u64; 4],
    /// Demand loads that merged with an already-outstanding miss.
    pub load_merges: u64,

    /// DRAM line reads attributed to each requestor
    /// (Main, Runahead, Stride, IMP).
    pub dram_reads: [u64; 4],
    /// Dirty-line write-backs to DRAM.
    pub dram_writebacks: u64,

    /// Prefetched lines issued per prefetching requestor.
    pub pf_issued: [u64; 4],
    /// Prefetched lines later touched by a demand access, per
    /// requestor.
    pub pf_used: [u64; 4],
    /// Prefetches dropped because the MSHR file was full.
    pub pf_dropped_mshr: u64,
    /// Prefetches dropped by injected faults (the fault-injection
    /// harness's drop-prefetch chaos; always 0 in normal runs).
    pub pf_dropped_fault: u64,
    /// Prefetches delayed by injected faults (always 0 in normal
    /// runs).
    pub pf_delayed_fault: u64,

    /// Stores issued by a *speculative* requestor (runahead or a
    /// prefetcher). Runahead is architecturally invisible only if its
    /// stores never reach the hierarchy, so the `checked` invariant
    /// layer asserts this counter stays 0.
    pub spec_stores: u64,

    /// Timeliness histogram for runahead-prefetched lines at first
    /// demand touch (L1 / L2 / L3 / off-chip-in-transfer).
    pub timeliness: [u64; 4],
}

impl MemStats {
    /// Index of `req` in the per-requestor counter arrays
    /// (`dram_reads`, `pf_issued`, `pf_used`).
    pub fn req_idx(req: Requestor) -> usize {
        match req {
            Requestor::Main => 0,
            Requestor::Runahead => 1,
            Requestor::Stride => 2,
            Requestor::Imp => 3,
        }
    }

    pub(crate) fn level_idx(level: HitLevel) -> usize {
        match level {
            HitLevel::L1 => 0,
            HitLevel::L2 => 1,
            HitLevel::L3 => 2,
            HitLevel::Dram => 3,
        }
    }

    pub(crate) fn timeliness_idx(level: TimelinessLevel) -> usize {
        match level {
            TimelinessLevel::L1 => 0,
            TimelinessLevel::L2 => 1,
            TimelinessLevel::L3 => 2,
            TimelinessLevel::OffChip => 3,
        }
    }

    /// DRAM reads by `req`.
    pub fn dram_reads_by(&self, req: Requestor) -> u64 {
        self.dram_reads[Self::req_idx(req)]
    }

    /// Total DRAM line reads.
    pub fn dram_reads_total(&self) -> u64 {
        self.dram_reads.iter().sum()
    }

    /// Demand loads served at `level`.
    pub fn loads_served_at(&self, level: HitLevel) -> u64 {
        self.load_hits[Self::level_idx(level)]
    }

    /// LLC misses per kilo-instruction for `instructions` retired
    /// instructions (main-thread demand misses only).
    pub fn llc_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.loads_served_at(HitLevel::Dram) as f64 * 1000.0 / instructions as f64
    }

    /// Prefetch accuracy of `req`: used / issued.
    pub fn pf_accuracy(&self, req: Requestor) -> f64 {
        let i = Self::req_idx(req);
        if self.pf_issued[i] == 0 {
            return 0.0;
        }
        self.pf_used[i] as f64 / self.pf_issued[i] as f64
    }

    /// Timeliness fractions (L1, L2, L3, off-chip) over all
    /// runahead-prefetched lines that the main thread touched.
    pub fn timeliness_fractions(&self) -> [f64; 4] {
        let total: u64 = self.timeliness.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        self.timeliness.map(|c| c as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_math() {
        let mut s = MemStats::default();
        s.load_hits[MemStats::level_idx(HitLevel::Dram)] = 50;
        assert_eq!(s.llc_mpki(1000), 50.0);
        assert_eq!(s.llc_mpki(0), 0.0);
    }

    #[test]
    fn accuracy_math() {
        let mut s = MemStats::default();
        s.pf_issued[MemStats::req_idx(Requestor::Runahead)] = 10;
        s.pf_used[MemStats::req_idx(Requestor::Runahead)] = 7;
        assert_eq!(s.pf_accuracy(Requestor::Runahead), 0.7);
        assert_eq!(s.pf_accuracy(Requestor::Stride), 0.0);
    }

    #[test]
    fn timeliness_fractions_sum_to_one() {
        let s = MemStats { timeliness: [6, 2, 1, 1], ..Default::default() };
        let f = s.timeliness_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f[0], 0.6);
    }

    #[test]
    fn empty_timeliness_is_all_zero() {
        assert_eq!(MemStats::default().timeliness_fractions(), [0.0; 4]);
    }
}
