//! Request-based DRAM contention model.

/// DRAM timing: a minimum latency plus a bandwidth-limited service
/// pipe, matching the paper's "50 ns min. latency, 51.2 GB/s
/// bandwidth, request-based contention model".
///
/// At 4 GHz, 50 ns = 200 cycles and 51.2 GB/s = 12.8 B/cycle, i.e. one
/// 64 B line every 5 cycles. Each line transfer claims the next free
/// 5-cycle slot; data is ready one minimum latency after its slot.
/// Under overload the slot queue grows, which is exactly the
/// back-pressure the "request-based contention model" provides.
#[derive(Clone, Debug)]
pub struct Dram {
    /// Minimum (unloaded) latency in cycles.
    pub min_latency: u64,
    /// Cycles between line transfers (bandwidth).
    pub cycles_per_line: u64,
    next_slot: u64,
    lines_transferred: u64,
}

impl Dram {
    /// Creates a DRAM model.
    pub fn new(min_latency: u64, cycles_per_line: u64) -> Dram {
        Dram { min_latency, cycles_per_line, next_slot: 0, lines_transferred: 0 }
    }

    /// The paper's configuration at 4 GHz: 200-cycle latency, one 64 B
    /// line per 5 cycles.
    pub fn table1() -> Dram {
        Dram::new(200, 5)
    }

    /// Schedules a line read issued at `now`; returns the cycle the
    /// line is ready.
    pub fn read_line(&mut self, now: u64) -> u64 {
        let slot = self.next_slot.max(now);
        self.next_slot = slot + self.cycles_per_line;
        self.lines_transferred += 1;
        slot + self.min_latency
    }

    /// Schedules a line write-back issued at `now` (consumes bandwidth
    /// but nobody waits for it).
    pub fn write_line(&mut self, now: u64) {
        let slot = self.next_slot.max(now);
        self.next_slot = slot + self.cycles_per_line;
        self.lines_transferred += 1;
    }

    /// Total lines moved (reads + write-backs).
    pub fn lines_transferred(&self) -> u64 {
        self.lines_transferred
    }

    /// Current queueing delay seen by a request issued at `now`.
    pub fn queue_delay(&self, now: u64) -> u64 {
        self.next_slot.saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_is_min_latency() {
        let mut d = Dram::new(200, 5);
        assert_eq!(d.read_line(1000), 1200);
    }

    #[test]
    fn bandwidth_serializes_bursts() {
        let mut d = Dram::new(200, 5);
        let r0 = d.read_line(0);
        let r1 = d.read_line(0);
        let r2 = d.read_line(0);
        assert_eq!(r0, 200);
        assert_eq!(r1, 205);
        assert_eq!(r2, 210);
    }

    #[test]
    fn idle_gaps_reset_the_pipe() {
        let mut d = Dram::new(200, 5);
        d.read_line(0);
        // Long idle gap: the next request should see no queueing.
        assert_eq!(d.read_line(10_000), 10_200);
        assert_eq!(d.queue_delay(10_300), 0);
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut d = Dram::new(200, 5);
        d.write_line(0);
        assert_eq!(d.read_line(0), 205);
        assert_eq!(d.lines_transferred(), 2);
    }
}
