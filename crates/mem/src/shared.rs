//! Chip-shared banked LLC + DRAM broker for multi-core simulation.
//!
//! In a single-core run the L3 and DRAM live inside each core's
//! private [`crate::MemorySystem`]. A chip run lifts them out: every
//! core's L2-miss traffic funnels into one [`SharedLlc`] — a banked L3
//! with **age-ordered (FCFS) arbitration** per bank, one shared DRAM
//! channel (the global bandwidth budget), and a fixed pool of shared
//! MSHRs (the global outstanding-miss budget). One core's runahead
//! burst therefore visibly delays another core's demand misses, which
//! is exactly the contention the chip experiments measure.
//!
//! **Arbitration policy (documented choice).** Each bank is modelled
//! as a single-ported structure busy for [`SharedLlc::bank_service_cycles`]
//! per request, serving requests oldest-first. Under the chip's
//! lockstep clock requests arrive in nondecreasing timestamp order
//! (cores are stepped cycle by cycle, in core-index order within a
//! cycle), so the age-ordered queue collapses to a per-bank
//! *busy-until* timestamp: a request arriving at `t` starts service at
//! `max(t, bank_next_free)` and the difference is its arbitration
//! stall. Ties within a cycle are served in core-index order — the
//! arrival order itself. This keeps per-bank state at two words
//! (pre-sized, allocation-free in steady state — the alloc gate
//! covers a 4-core chip).
//!
//! **No coherence, disjoint address spaces.** Each core runs its own
//! workload image, so numerically equal addresses on different cores
//! are *different* data. Shared-LLC tags are therefore salted with the
//! core index ([`SharedLlc::tag`]) — cores never alias each other's
//! lines (no false sharing, no cross-core MSHR merging), they only
//! compete for capacity, banks, MSHRs and DRAM bandwidth.
//!
//! **Ownership (no lock).** The broker is a plain owned value: the
//! chip holds it in a `Box` and *installs* it into the stepping core's
//! hierarchy before that core's tick, taking it back afterwards — a
//! pointer move on a single thread, in core-index order, so every
//! access uses an uncontended `&mut` and the per-access
//! `Arc<Mutex<_>>` of the original design is gone entirely (see
//! `vr_chip` for the install/take protocol and its equivalence
//! argument).

use crate::cache::{Cache, CacheConfig};
use crate::dram::Dram;

/// Geometry and timing of the shared LLC broker.
#[derive(Clone, Copy, Debug)]
pub struct SharedLlcConfig {
    /// The shared L3 geometry/latency (typically the per-core
    /// [`crate::MemConfig::l3`]).
    pub l3: CacheConfig,
    /// Shared DRAM minimum latency in cycles.
    pub dram_min_latency: u64,
    /// Shared DRAM cycles per line transfer (bandwidth).
    pub dram_cycles_per_line: u64,
    /// Number of LLC banks (need not be a power of two; the bank hash
    /// reduces modulo this count).
    pub banks: usize,
    /// Cycles a bank is busy per request (its single-ported service
    /// time).
    pub bank_service_cycles: u64,
    /// Shared MSHR pool: maximum LLC misses outstanding to DRAM across
    /// all cores. A full pool rejects the miss (the core retries, like
    /// a private MSHR-full).
    pub shared_mshrs: usize,
}

/// Contention counters accumulated by the shared broker, read out into
/// `vr_chip::ChipStats` at the end of a run.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SharedLlcStats {
    /// Requests that waited on a bank busy with a *different* core's
    /// request.
    pub bank_conflicts: u64,
    /// Total cycles requests spent waiting for their bank (age-ordered
    /// arbitration delay, summed over requests).
    pub arbitration_stall_cycles: u64,
    /// LLC misses rejected because the shared MSHR pool was full.
    pub shared_mshr_rejections: u64,
    /// Shared-LLC hits.
    pub llc_hits: u64,
    /// Shared-LLC misses sent to DRAM.
    pub llc_misses: u64,
    /// Dirty shared-LLC victims written back to DRAM.
    pub dram_writebacks: u64,
}

/// Outcome of one shared-LLC access (the shared analogue of the
/// private L3-hit / DRAM steps of [`crate::MemorySystem`]).
#[derive(Clone, Copy, Debug)]
pub enum SharedOutcome {
    /// The line was resident in the shared L3; data ready at
    /// `ready_at` (bank wait + L3 latency included).
    Hit {
        /// Absolute cycle the data is available at the requesting core.
        ready_at: u64,
    },
    /// LLC miss, fetched from the shared DRAM channel.
    Miss {
        /// Absolute cycle the line arrives (bank wait + L3 lookup +
        /// DRAM queueing + DRAM latency).
        ready_at: u64,
    },
    /// The shared MSHR pool is full: the miss cannot be tracked. The
    /// core sees a (private) MSHR-full and retries.
    Reject,
}

/// The chip-shared banked LLC + DRAM broker. See the module docs for
/// the model; construction pre-sizes every per-bank and in-flight
/// structure so steady state is allocation-free.
#[derive(Clone, Debug)]
pub struct SharedLlc {
    l3: Cache,
    dram: Dram,
    cfg: SharedLlcConfig,
    /// Cycle each bank becomes free (the collapsed age-ordered queue).
    bank_next_free: Box<[u64]>,
    /// Last core a bank served (distinguishes bank *conflicts* — two
    /// cores contending — from self-queueing).
    bank_last_core: Box<[u32]>,
    /// Ready times of LLC misses in flight to DRAM (the shared MSHR
    /// pool). Bounded by `cfg.shared_mshrs`; entries expire lazily.
    inflight: Vec<u64>,
    stats: SharedLlcStats,
}

impl SharedLlc {
    /// Builds the broker; all state is pre-sized here.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `shared_mshrs` is zero (a broker that can
    /// serve nothing is a configuration bug, not a run-time condition).
    pub fn new(cfg: SharedLlcConfig) -> SharedLlc {
        assert!(cfg.banks > 0, "shared LLC needs at least one bank");
        assert!(cfg.shared_mshrs > 0, "shared LLC needs at least one MSHR");
        SharedLlc {
            l3: Cache::new(cfg.l3),
            dram: Dram::new(cfg.dram_min_latency, cfg.dram_cycles_per_line),
            bank_next_free: vec![0; cfg.banks].into_boxed_slice(),
            bank_last_core: vec![u32::MAX; cfg.banks].into_boxed_slice(),
            inflight: Vec::with_capacity(cfg.shared_mshrs),
            stats: SharedLlcStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SharedLlcConfig {
        &self.cfg
    }

    /// Accumulated contention counters.
    pub fn stats(&self) -> &SharedLlcStats {
        &self.stats
    }

    /// Core-salted tag: numerically equal line addresses on different
    /// cores are different data (disjoint functional memories), so
    /// they must never alias in the shared cache. Workload images live
    /// far below bit 56.
    fn tag(core: u32, la: u64) -> u64 {
        la ^ (u64::from(core) << 56)
    }

    /// Bank of a tagged line address: a SplitMix-style mix over the
    /// line number so identical access patterns on different cores
    /// decorrelate across banks (physical pages would), then reduce
    /// modulo the bank count.
    fn bank_of(&self, tagged: u64) -> usize {
        let mut x = tagged >> self.cfg.l3.line_bytes.trailing_zeros();
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x % self.cfg.banks as u64) as usize
    }

    /// Commits `bank`'s single service slot to this request (already
    /// priced at `start`), accounting arbitration stalls and
    /// cross-core bank conflicts.
    fn commit_bank(&mut self, bank: usize, start: u64, arrive: u64, core: u32) {
        let wait = start - arrive;
        if wait > 0 {
            self.stats.arbitration_stall_cycles += wait;
            if self.bank_last_core[bank] != core {
                self.stats.bank_conflicts += 1;
            }
        }
        self.bank_next_free[bank] = start + self.cfg.bank_service_cycles;
        self.bank_last_core[bank] = core;
    }

    /// One shared-LLC access for `core`'s line `la`, arriving at
    /// `arrive` (the core's L1+L2 lookup already charged). Replaces
    /// the private L3-hit and DRAM steps of the per-core hierarchy.
    pub fn access_line(&mut self, core: u32, la: u64, arrive: u64) -> SharedOutcome {
        let tagged = Self::tag(core, la);
        let bank = self.bank_of(tagged);
        let start = arrive.max(self.bank_next_free[bank]);
        if let Some(pos) = self.l3.probe(tagged) {
            self.commit_bank(bank, start, arrive, core);
            self.l3.promote(tagged, pos);
            self.stats.llc_hits += 1;
            return SharedOutcome::Hit { ready_at: start + self.cfg.l3.latency };
        }
        // Shared MSHR pool: expire completed fetches lazily, then
        // claim a slot or reject. `retain` on the pre-sized vec never
        // allocates. A rejected request is turned away at the LLC
        // controller *before* bank scheduling — it must not claim a
        // bank slot, or a retry storm from N cores would advance the
        // bank's busy-until faster than the clock and livelock the
        // chip (every later arrival priced into the far future, the
        // pool never draining).
        self.inflight.retain(|&ready| ready > arrive);
        if self.inflight.len() >= self.cfg.shared_mshrs {
            self.stats.shared_mshr_rejections += 1;
            return SharedOutcome::Reject;
        }
        self.commit_bank(bank, start, arrive, core);
        self.stats.llc_misses += 1;
        let lookup_done = start + self.cfg.l3.latency;
        let ready_at = self.dram.read_line(lookup_done);
        self.inflight.push(ready_at);
        self.fill(tagged, false);
        SharedOutcome::Miss { ready_at }
    }

    /// Accepts a dirty (or L3-resident) L2 victim evicted from `core`'s
    /// private hierarchy: merge into the resident copy, or install a
    /// dirty line (clean non-resident victims are dropped, as in the
    /// private model). Bookkeeping only — victim traffic rides the
    /// eviction it is part of, so it claims no bank slot.
    pub fn fill_victim(&mut self, core: u32, la: u64, dirty: bool) {
        let tagged = Self::tag(core, la);
        if let Some(pos) = self.l3.probe(tagged) {
            self.l3.promote(tagged, pos).dirty |= dirty;
        } else if dirty {
            self.fill(tagged, true);
        }
    }

    /// Installs `tagged` into the shared L3, writing back a dirty
    /// victim through the shared DRAM channel.
    fn fill(&mut self, tagged: u64, dirty: bool) {
        if let Some(victim) = self.l3.fill(tagged, None) {
            if victim.dirty {
                self.dram.write_line(0);
                self.stats.dram_writebacks += 1;
            }
        }
        if dirty {
            if let Some(line) = self.l3.lookup(tagged) {
                line.dirty = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SharedLlcConfig {
        SharedLlcConfig {
            // 8 lines of 64 B, 2-way: 4 sets.
            l3: CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64, latency: 30 },
            dram_min_latency: 200,
            dram_cycles_per_line: 5,
            banks: 4,
            bank_service_cycles: 4,
            shared_mshrs: 2,
        }
    }

    #[test]
    fn hit_after_miss_and_core_salting_prevents_aliasing() {
        let mut llc = SharedLlc::new(tiny());
        assert!(matches!(llc.access_line(0, 0x1000, 0), SharedOutcome::Miss { .. }));
        assert!(matches!(llc.access_line(0, 0x1000, 1000), SharedOutcome::Hit { .. }));
        // The same numeric address on another core is different data.
        assert!(matches!(llc.access_line(1, 0x1000, 2000), SharedOutcome::Miss { .. }));
        assert_eq!(llc.stats().llc_hits, 1);
        assert_eq!(llc.stats().llc_misses, 2);
    }

    #[test]
    fn same_bank_requests_stall_and_cross_core_counts_a_conflict() {
        let mut llc = SharedLlc::new(SharedLlcConfig { banks: 1, shared_mshrs: 16, ..tiny() });
        let SharedOutcome::Miss { ready_at: r0 } = llc.access_line(0, 0x1000, 10) else {
            panic!("miss expected");
        };
        // Same cycle, other core, single bank: served second, 4 cycles
        // of arbitration stall, counted as a cross-core conflict.
        let SharedOutcome::Miss { ready_at: r1 } = llc.access_line(1, 0x2000, 10) else {
            panic!("miss expected");
        };
        assert!(r1 > r0);
        assert_eq!(llc.stats().arbitration_stall_cycles, 4);
        assert_eq!(llc.stats().bank_conflicts, 1);
        // Same core queueing behind itself is a stall, not a conflict.
        llc.access_line(1, 0x3000, 10);
        assert_eq!(llc.stats().bank_conflicts, 1);
        assert!(llc.stats().arbitration_stall_cycles > 4);
    }

    #[test]
    fn shared_mshr_pool_rejects_and_recovers() {
        let mut llc = SharedLlc::new(tiny()); // 2 shared MSHRs
        assert!(matches!(llc.access_line(0, 0x1000, 0), SharedOutcome::Miss { .. }));
        assert!(matches!(llc.access_line(1, 0x2000, 0), SharedOutcome::Miss { .. }));
        assert!(matches!(llc.access_line(2, 0x3000, 0), SharedOutcome::Reject));
        assert_eq!(llc.stats().shared_mshr_rejections, 1);
        // Once the fetches land, capacity frees up.
        assert!(matches!(llc.access_line(2, 0x3000, 5000), SharedOutcome::Miss { .. }));
    }

    #[test]
    fn shared_dram_bandwidth_serializes_cross_core_bursts() {
        let mut llc = SharedLlc::new(SharedLlcConfig { shared_mshrs: 16, ..tiny() });
        // Two cores missing different banks at the same instant still
        // share one DRAM channel: ready times serialize in 5-cycle
        // slots.
        let mut readies = Vec::new();
        for core in 0..2u32 {
            for i in 0..3u64 {
                if let SharedOutcome::Miss { ready_at } =
                    llc.access_line(core, 0x10_000 + i * 4096, 0)
                {
                    readies.push(ready_at);
                }
            }
        }
        readies.sort_unstable();
        for pair in readies.windows(2) {
            assert!(pair[1] >= pair[0] + 5, "line transfers must serialize: {readies:?}");
        }
    }

    #[test]
    fn dirty_victims_write_back_through_shared_dram() {
        let mut llc = SharedLlc::new(SharedLlcConfig { shared_mshrs: 64, ..tiny() });
        llc.fill_victim(0, 0x1000, true);
        // Stream enough lines through the 8-line L3 to evict the dirty
        // one.
        for i in 0..64u64 {
            llc.access_line(0, 0x20_000 + i * 64, i * 1000);
        }
        assert!(llc.stats().dram_writebacks > 0, "dirty line must be written back");
        // A clean non-resident victim is dropped silently.
        let before = llc.stats().dram_writebacks;
        llc.fill_victim(3, 0x9000, false);
        assert_eq!(llc.stats().dram_writebacks, before);
    }
}
