#![warn(missing_docs)]
//! # vr-mem
//!
//! The memory system of the Vector Runahead reproduction: a three-level
//! write-back cache hierarchy with L1-D miss-status holding registers
//! (MSHRs), a bandwidth-contended DRAM model, a 16-stream stride
//! prefetcher, and an indirect memory prefetcher (IMP, Yu et al.
//! MICRO'15) used as an evaluation baseline.
//!
//! Timing is *timestamp-based*: every access carries the current core
//! cycle and receives back the absolute cycle at which its data is
//! ready. The MSHR file bounds memory-level parallelism (24 entries at
//! L1-D per the paper's Table 1) — this is the resource Vector
//! Runahead's gathers saturate.
//!
//! ```
//! use vr_mem::{Access, MemConfig, MemorySystem, Requestor};
//!
//! let mut ms = MemorySystem::new(MemConfig::table1());
//! // Cold access goes to DRAM…
//! let r1 = ms.access(0x4000, Access::Load, Requestor::Main, 0, 0).unwrap();
//! assert!(r1.ready_at >= 200);
//! // …and once the line returns, the same line hits in L1 (4 cycles).
//! let later = r1.ready_at + 1;
//! let r2 = ms.access(0x4000, Access::Load, Requestor::Main, 0, later).unwrap();
//! assert_eq!(r2.ready_at, later + 4);
//! ```

mod cache;
mod config;
mod dram;
mod hierarchy;
mod imp;
mod mshr;
mod shared;
mod stats;
mod stride;
mod telemetry;

pub use cache::{Cache, CacheConfig, LineState};
pub use config::MemConfig;
pub use dram::Dram;
pub use hierarchy::{Access, AccessOutcome, HitLevel, MemorySystem, MshrFull};
pub use imp::{Imp, ImpConfig, ImpPrefetch};
pub use mshr::MshrFile;
pub use shared::{SharedLlc, SharedLlcConfig, SharedLlcStats, SharedOutcome};
pub use stats::{MemStats, TimelinessLevel};
pub use stride::{PrefetchAddrs, StrideDetector, StrideEntry, StridePrefetcher};
pub use telemetry::{PfEvent, PfOutcome, PfTelemetry};

/// Who issued a memory request; used for traffic attribution
/// (accuracy/coverage figures) and prefetch bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Requestor {
    /// A demand access from the main thread's pipeline.
    Main,
    /// A speculative access from a runahead engine (classic, PRE or
    /// Vector Runahead).
    Runahead,
    /// The always-on L1-D stride prefetcher.
    Stride,
    /// The indirect memory prefetcher baseline.
    Imp,
}

impl Requestor {
    /// Whether this requestor is a prefetcher of any kind (anything
    /// but a main-thread demand access).
    pub fn is_prefetch(self) -> bool {
        self != Requestor::Main
    }

    /// Stable lowercase label (used in telemetry/JSON export).
    pub fn label(self) -> &'static str {
        match self {
            Requestor::Main => "main",
            Requestor::Runahead => "runahead",
            Requestor::Stride => "stride",
            Requestor::Imp => "imp",
        }
    }
}
