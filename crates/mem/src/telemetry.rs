//! Per-line prefetch-lifecycle telemetry
//! (issued → filled → used / evicted).
//!
//! Disabled by default: [`crate::MemorySystem`] holds an
//! `Option<Box<PfTelemetry>>` and every hook is behind an `if let`, so
//! a normal simulation pays one never-taken branch per *prefetch
//! bookkeeping event* (not per access) and the reported [`crate::MemStats`]
//! are bit-identical with telemetry on or off — telemetry only
//! *observes* the counters the hierarchy already maintains.
//!
//! The interesting derived signal is the **lead distance**: the number
//! of cycles between a prefetched line's fill and its first demand
//! touch. Large leads mean the prefetch was early enough to hide the
//! full DRAM latency (but risks eviction); a use *before* the fill
//! completes is the paper's "off-chip" timeliness bucket — the
//! prefetch was issued but too late to fully hide the miss.

use std::collections::HashMap;

use vr_obs::{Histogram, Json, RingLog};

use crate::stats::TimelinessLevel;
use crate::{HitLevel, Requestor};

/// How a tracked prefetch's lifecycle ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PfOutcome {
    /// First demand touch found the line at the given level;
    /// `lead_cycles` is fill-to-use time (0 when the demand access
    /// merged with the still-outstanding prefetch miss).
    Used {
        /// Where the demand access found the line.
        found: TimelinessLevel,
        /// Cycles between the fill completing and the first use
        /// (0 for an in-transit merge).
        lead_cycles: u64,
    },
    /// The line left the hierarchy without ever being demanded.
    Evicted,
}

/// One completed prefetch lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct PfEvent {
    /// Line address (low bits cleared).
    pub line_addr: u64,
    /// Which prefetcher issued it.
    pub requestor: Requestor,
    /// Cycle the prefetch was accepted by the hierarchy.
    pub issued_at: u64,
    /// Cycle its fill completed (known at issue: timestamp timing).
    pub fill_at: u64,
    /// Level the prefetch was served from (fill *source*).
    pub fill_level: HitLevel,
    /// Cycle the lifecycle ended (first demand touch or eviction).
    pub ended_at: u64,
    /// How it ended.
    pub outcome: PfOutcome,
}

/// In-flight tracking state for one prefetched line.
#[derive(Clone, Copy, Debug)]
struct Issue {
    requestor: Requestor,
    issued_at: u64,
    fill_at: u64,
    fill_level: HitLevel,
}

/// Bound on the in-flight map: lines prefetched but never demanded or
/// evicted (e.g. still resident at end of run) would otherwise
/// accumulate without limit on pathological workloads.
const MAX_TRACKED: usize = 1 << 16;

/// The prefetch-lifecycle tracker (enable via
/// [`crate::MemorySystem::enable_telemetry`]).
#[derive(Clone, Debug)]
pub struct PfTelemetry {
    /// line address → issue info, until used or evicted.
    inflight: HashMap<u64, Issue>,
    /// Completed lifecycles, newest-last (ring-buffered).
    events: RingLog<PfEvent>,
    /// Fill-to-first-use cycles for used prefetches that were filled
    /// before the demand touch.
    lead_hist: Histogram,
    /// Lifecycles that ended in a demand touch.
    used: u64,
    /// Demand touches that merged with the still-outstanding prefetch.
    used_before_fill: u64,
    /// Lifecycles that ended in eviction without use.
    evicted_unused: u64,
    /// Prefetches that entered tracking.
    tracked: u64,
    /// Prefetches not tracked because the map was at capacity.
    untracked: u64,
}

impl PfTelemetry {
    /// Creates a tracker retaining the last `capacity` completed
    /// lifecycles.
    pub fn new(capacity: usize) -> PfTelemetry {
        PfTelemetry {
            inflight: HashMap::new(),
            events: RingLog::new(capacity),
            lead_hist: Histogram::new(),
            used: 0,
            used_before_fill: 0,
            evicted_unused: 0,
            tracked: 0,
            untracked: 0,
        }
    }

    pub(crate) fn on_issue(
        &mut self,
        line_addr: u64,
        requestor: Requestor,
        issued_at: u64,
        fill_at: u64,
        fill_level: HitLevel,
    ) {
        if self.inflight.len() >= MAX_TRACKED {
            self.untracked += 1;
            return;
        }
        // A re-issued prefetch to a line whose previous lifecycle is
        // still open supersedes it (no event, no double count), so
        // `used + evicted_unused + inflight == tracked` holds exactly.
        let superseded = self
            .inflight
            .insert(line_addr, Issue { requestor, issued_at, fill_at, fill_level })
            .is_some();
        self.tracked += u64::from(!superseded);
    }

    pub(crate) fn on_use(&mut self, line_addr: u64, found: TimelinessLevel, now: u64) {
        let Some(issue) = self.inflight.remove(&line_addr) else { return };
        self.used += 1;
        let lead_cycles = if found == TimelinessLevel::OffChip {
            self.used_before_fill += 1;
            0
        } else {
            let lead = now.saturating_sub(issue.fill_at);
            self.lead_hist.record(lead);
            lead
        };
        self.events.push(PfEvent {
            line_addr,
            requestor: issue.requestor,
            issued_at: issue.issued_at,
            fill_at: issue.fill_at,
            fill_level: issue.fill_level,
            ended_at: now,
            outcome: PfOutcome::Used { found, lead_cycles },
        });
    }

    pub(crate) fn on_evict(&mut self, line_addr: u64, now: u64) {
        let Some(issue) = self.inflight.remove(&line_addr) else { return };
        self.evicted_unused += 1;
        self.events.push(PfEvent {
            line_addr,
            requestor: issue.requestor,
            issued_at: issue.issued_at,
            fill_at: issue.fill_at,
            fill_level: issue.fill_level,
            ended_at: now,
            outcome: PfOutcome::Evicted,
        });
    }

    /// Completed lifecycle events (ring-buffered window).
    pub fn events(&self) -> impl Iterator<Item = &PfEvent> {
        self.events.iter()
    }

    /// Total completed lifecycles ever recorded (including ones the
    /// ring has evicted).
    pub fn total_events(&self) -> u64 {
        self.events.total()
    }

    /// Fill-to-first-use lead-distance histogram (used prefetches that
    /// filled before the demand touch).
    pub fn lead_hist(&self) -> &Histogram {
        &self.lead_hist
    }

    /// Lifecycles that ended in a demand touch.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Demand touches that merged with the outstanding prefetch miss
    /// (the "off-chip" timeliness bucket).
    pub fn used_before_fill(&self) -> u64 {
        self.used_before_fill
    }

    /// Lifecycles that ended in eviction without use.
    pub fn evicted_unused(&self) -> u64 {
        self.evicted_unused
    }

    /// Prefetches currently being tracked (issued, not yet resolved).
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Lifecycles ever started (issued prefetches accepted for
    /// tracking). Every one of them ends in exactly one outcome:
    /// `used() + evicted_unused() + inflight() == tracked()`.
    pub fn tracked(&self) -> u64 {
        self.tracked
    }

    /// Issued prefetches *not* tracked because the in-flight map was
    /// at capacity (0 in any realistic run).
    pub fn untracked(&self) -> u64 {
        self.untracked
    }

    /// JSON rendering of the aggregate state (schema: part of the
    /// `vr-telemetry-v1` document — see DESIGN.md §10).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tracked".into(), Json::U64(self.tracked)),
            ("untracked".into(), Json::U64(self.untracked)),
            ("used".into(), Json::U64(self.used)),
            ("used_before_fill".into(), Json::U64(self.used_before_fill)),
            ("evicted_unused".into(), Json::U64(self.evicted_unused)),
            ("inflight".into(), Json::U64(self.inflight.len() as u64)),
            ("lead_cycles".into(), self.lead_hist.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, MemConfig, MemorySystem};

    fn sys() -> MemorySystem {
        let mut ms = MemorySystem::new(MemConfig::tiny_for_tests());
        ms.enable_telemetry(64);
        ms
    }

    #[test]
    fn timely_use_records_lead_distance() {
        let mut ms = sys();
        assert!(ms.prefetch(0x2000, Requestor::Runahead, 0));
        // tiny config: fill completes at 242.
        ms.access(0x2000, Access::Load, Requestor::Main, 5, 400).unwrap();
        let t = ms.telemetry().expect("enabled");
        assert_eq!(t.used(), 1);
        assert_eq!(t.evicted_unused(), 0);
        let ev: Vec<_> = t.events().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].issued_at, 0);
        assert_eq!(ev[0].fill_at, 242);
        assert_eq!(ev[0].fill_level, HitLevel::Dram);
        assert_eq!(
            ev[0].outcome,
            PfOutcome::Used { found: TimelinessLevel::L1, lead_cycles: 400 - 242 }
        );
        assert_eq!(t.lead_hist().count(), 1);
        assert_eq!(t.lead_hist().max(), Some(158));
    }

    #[test]
    fn in_transit_use_is_flagged_off_chip_with_zero_lead() {
        let mut ms = sys();
        ms.prefetch(0x2000, Requestor::Runahead, 0);
        ms.access(0x2000, Access::Load, Requestor::Main, 5, 10).unwrap();
        let t = ms.telemetry().unwrap();
        assert_eq!(t.used_before_fill(), 1);
        let ev: Vec<_> = t.events().collect();
        assert_eq!(
            ev[0].outcome,
            PfOutcome::Used { found: TimelinessLevel::OffChip, lead_cycles: 0 }
        );
        assert_eq!(t.lead_hist().count(), 0, "merges don't pollute the lead histogram");
    }

    #[test]
    fn unused_prefetch_eventually_reports_eviction() {
        let mut ms = sys();
        assert!(ms.prefetch(0x2000, Requestor::Stride, 0));
        // Stream enough demand lines through to push the unused
        // prefetched line out of every level (tiny L3 = 128 lines).
        for i in 0..1000u64 {
            ms.access(0x100_000 + i * 64, Access::Load, Requestor::Main, 1, 500 + i * 300).unwrap();
        }
        let t = ms.telemetry().unwrap();
        assert_eq!(t.evicted_unused(), 1);
        assert_eq!(t.used(), 0);
        let ev: Vec<_> = t.events().collect();
        assert_eq!(ev[0].outcome, PfOutcome::Evicted);
        assert!(ev[0].ended_at > ev[0].fill_at);
    }

    #[test]
    fn stats_are_bit_identical_with_telemetry_on_or_off() {
        let drive = |telemetry: bool| {
            let mut ms = MemorySystem::new(MemConfig::tiny_for_tests());
            if telemetry {
                ms.enable_telemetry(16);
            }
            for i in 0..128u64 {
                ms.prefetch(0x8000 + i * 192, Requestor::Runahead, i * 50);
                let _ = ms.access(0x8000 + i * 64, Access::Load, Requestor::Main, 3, i * 100);
                let _ = ms.access(0x8000 + i * 128, Access::Store, Requestor::Main, 4, i * 100 + 7);
            }
            *ms.stats()
        };
        let (off, on) = (drive(false), drive(true));
        assert_eq!(off, on, "telemetry must not perturb MemStats");
    }

    #[test]
    fn json_export_has_the_schema_fields() {
        let mut ms = sys();
        ms.prefetch(0x2000, Requestor::Runahead, 0);
        ms.access(0x2000, Access::Load, Requestor::Main, 5, 400).unwrap();
        let j = ms.telemetry().unwrap().to_json();
        for key in ["tracked", "used", "used_before_fill", "evicted_unused", "lead_cycles"] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(j.get("used").and_then(Json::as_u64), Some(1));
    }
}
