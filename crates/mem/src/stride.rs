//! Stride detection (reference prediction table) and the always-on
//! L1-D stride prefetcher.

/// One reference-prediction-table entry: the paper's stride detector
/// stores the load PC, previous address, stride and a 2-bit saturating
/// confidence counter (§"Hardware Overhead": 48 + 48 + 16 + 2 bits per
/// entry).
#[derive(Clone, Copy, Debug)]
pub struct StrideEntry {
    /// PC of the tracked load.
    pub pc: u64,
    /// Address of its most recent access.
    pub last_addr: u64,
    /// Last observed address delta.
    pub stride: i64,
    /// 2-bit saturating confidence (0–3).
    pub confidence: u8,
}

/// Per-PC stride detector / reference prediction table (RPT).
///
/// Shared design between the L1-D stride prefetcher (16 streams) and
/// Vector Runahead's striding-load detector (32 entries): a 2-way
/// set-associative, LRU-replaced table of [`StrideEntry`]s (pure
/// direct mapping thrashes when two loads of one tight loop alias —
/// our instruction-index PCs are denser than x86 byte PCs). An entry
/// is *confident* once the same non-zero stride repeats
/// `CONFIDENT_THRESHOLD` times.
#[derive(Clone, Debug)]
pub struct StrideDetector {
    /// MRU-first, at most [`StrideDetector::WAYS`] entries per set.
    sets: Vec<Vec<StrideEntry>>,
    mask: u64,
    entry_count: usize,
}

impl StrideDetector {
    /// Confidence level at and above which a stride is trusted.
    pub const CONFIDENT_THRESHOLD: u8 = 2;

    /// Associativity.
    pub const WAYS: usize = 2;

    /// Creates a detector with `entries` slots (power of two, ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is below the
    /// associativity.
    pub fn new(entries: usize) -> StrideDetector {
        assert!(entries.is_power_of_two(), "entry count must be a power of two");
        assert!(entries >= Self::WAYS, "need at least one full set");
        let sets = entries / Self::WAYS;
        // Allocate every set's way storage up front: cloning an empty
        // `Vec::with_capacity(..)` drops the capacity, which would
        // leave cold sets growing on the hot path (DESIGN.md §12).
        let mut storage = Vec::with_capacity(sets);
        storage.resize_with(sets, || Vec::with_capacity(Self::WAYS));
        StrideDetector { sets: storage, mask: sets as u64 - 1, entry_count: entries }
    }

    fn set_of(&self, pc: u64) -> usize {
        // Folded-XOR index: loop bodies emit loads at small constant
        // PC distances, so plain low bits systematically alias.
        (((pc >> 3) ^ pc) & self.mask) as usize
    }

    /// Trains on one load execution; returns the entry state after
    /// training.
    pub fn train(&mut self, pc: u64, addr: u64) -> StrideEntry {
        let set_idx = self.set_of(pc);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|e| e.pc == pc) {
            let mut e = set.remove(pos);
            let stride = addr.wrapping_sub(e.last_addr) as i64;
            if stride == e.stride && stride != 0 {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.stride = stride;
                e.confidence = 0;
            }
            e.last_addr = addr;
            set.insert(0, e);
            return set[0];
        }
        if set.len() == Self::WAYS {
            set.pop();
        }
        let fresh = StrideEntry { pc, last_addr: addr, stride: 0, confidence: 0 };
        set.insert(0, fresh);
        fresh
    }

    /// The confident stride for the load at `pc`, if any.
    pub fn confident_stride(&self, pc: u64) -> Option<i64> {
        match self.entry(pc) {
            Some(e) if e.confidence >= Self::CONFIDENT_THRESHOLD && e.stride != 0 => Some(e.stride),
            _ => None,
        }
    }

    /// The full entry for `pc`, if tracked.
    pub fn entry(&self, pc: u64) -> Option<&StrideEntry> {
        self.sets[self.set_of(pc)].iter().find(|e| e.pc == pc)
    }

    /// Storage cost in bits (for the hardware-overhead table): per
    /// entry 48-bit PC + 48-bit address + 16-bit stride + 2-bit
    /// confidence + 1 innermost bit.
    pub fn storage_bits(&self) -> u64 {
        self.entry_count as u64 * (48 + 48 + 16 + 2 + 1)
    }
}

/// The always-on hardware stride prefetcher at the L1-D level
/// ("stride prefetcher (16 streams)" in Table 1).
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    detector: StrideDetector,
    /// How many strides ahead of the current access to prefetch.
    pub degree: u64,
    /// Lookahead distance (in strides) of the first prefetch.
    pub distance: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `streams` tracked PCs.
    pub fn new(streams: usize, degree: u64, distance: u64) -> StridePrefetcher {
        StridePrefetcher { detector: StrideDetector::new(streams), degree, distance }
    }

    /// The Table 1 configuration: 16 streams, degree 4, distance 16.
    pub fn table1() -> StridePrefetcher {
        StridePrefetcher::new(16, 4, 16)
    }

    /// Trains on a demand load and returns the byte addresses to
    /// prefetch (empty while confidence is still building).
    ///
    /// The addresses come back as a [`PrefetchAddrs`] value iterator —
    /// a `Copy` struct, not a `Vec` — because this runs once per
    /// committed load on the simulator hot path and must not allocate
    /// (DESIGN.md §12). Address order is unchanged: `distance`,
    /// `distance+1`, …, `distance+degree-1` strides ahead.
    pub fn train(&mut self, pc: u64, addr: u64) -> PrefetchAddrs {
        let e = self.detector.train(pc, addr);
        if e.confidence < StrideDetector::CONFIDENT_THRESHOLD || e.stride == 0 {
            return PrefetchAddrs { addr, stride: 0, k: 0, end: 0 };
        }
        PrefetchAddrs { addr, stride: e.stride, k: self.distance, end: self.distance + self.degree }
    }

    /// The underlying stride detector.
    pub fn detector(&self) -> &StrideDetector {
        &self.detector
    }
}

/// Allocation-free value iterator over the prefetch addresses produced
/// by one [`StridePrefetcher::train`] call: `addr + stride·k` for
/// `k ∈ [distance, distance+degree)`. Wrapping arithmetic matches the
/// historical `Vec`-collecting implementation exactly.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchAddrs {
    addr: u64,
    stride: i64,
    k: u64,
    end: u64,
}

impl PrefetchAddrs {
    /// Whether no prefetches will be issued (confidence still
    /// building, or zero stride).
    pub fn is_empty(&self) -> bool {
        self.k >= self.end
    }
}

impl Iterator for PrefetchAddrs {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.k >= self.end {
            return None;
        }
        let a = self.addr.wrapping_add((self.stride as u64).wrapping_mul(self.k));
        self.k += 1;
        Some(a)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.k) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PrefetchAddrs {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_a_regular_stride() {
        let mut d = StrideDetector::new(32);
        for i in 0..4u64 {
            d.train(0x10, 0x1000 + i * 8);
        }
        assert_eq!(d.confident_stride(0x10), Some(8));
        let e = d.entry(0x10).unwrap();
        assert_eq!(e.stride, 8);
        assert!(e.confidence >= 2);
    }

    #[test]
    fn irregular_addresses_never_become_confident() {
        let mut d = StrideDetector::new(32);
        for a in [100u64, 900, 300, 5000, 17] {
            d.train(0x10, a);
        }
        assert_eq!(d.confident_stride(0x10), None);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut d = StrideDetector::new(32);
        for i in 0..4u64 {
            d.train(0x10, 0x1000 + i * 8);
        }
        assert!(d.confident_stride(0x10).is_some());
        d.train(0x10, 0x9000);
        assert_eq!(d.confident_stride(0x10), None);
    }

    #[test]
    fn negative_strides_are_detected() {
        let mut d = StrideDetector::new(32);
        for i in 0..4u64 {
            d.train(0x10, 0x8000 - i * 16);
        }
        assert_eq!(d.confident_stride(0x10), Some(-16));
    }

    #[test]
    fn conflicting_pcs_evict_lru() {
        let mut d = StrideDetector::new(2); // one set of two ways
        d.train(0, 0x100);
        d.train(2, 0x200);
        d.train(0, 0x108); // refresh pc 0
        d.train(4, 0x300); // evicts pc 2 (LRU)
        assert!(d.entry(0).is_some(), "pc 0 was MRU and must survive");
        assert!(d.entry(2).is_none(), "pc 2 was LRU and must be evicted");
        assert!(d.entry(4).is_some());
    }

    #[test]
    fn two_alternating_pcs_in_one_set_both_stay_confident() {
        // The pathological pattern that broke direct mapping: two
        // loads of the same loop body aliasing to one set, trained
        // alternately in program order.
        let mut d = StrideDetector::new(16);
        for i in 0..8u64 {
            d.train(5, 0x1000 + i * 8);
            d.train(5 + 8 * 2, 0x9000 + i * 64); // same set, other way
        }
        assert_eq!(d.confident_stride(5), Some(8));
        assert_eq!(d.confident_stride(21), Some(64));
    }

    #[test]
    fn zero_stride_is_not_confident() {
        let mut d = StrideDetector::new(32);
        for _ in 0..8 {
            d.train(0x10, 0x1000);
        }
        assert_eq!(d.confident_stride(0x10), None);
    }

    #[test]
    fn prefetcher_emits_degree_addresses_at_distance() {
        let mut p = StridePrefetcher::new(16, 4, 4);
        let mut out = Vec::new();
        for i in 0..6u64 {
            out = p.train(0x10, 0x1000 + i * 64).collect();
        }
        // Last access at 0x1000 + 5·64 = 0x1140; distance 4, degree 4.
        assert_eq!(out, vec![0x1140 + 4 * 64, 0x1140 + 5 * 64, 0x1140 + 6 * 64, 0x1140 + 7 * 64]);
    }

    #[test]
    fn prefetcher_silent_before_confidence() {
        let mut p = StridePrefetcher::table1();
        assert!(p.train(0x10, 0x1000).is_empty());
        assert!(p.train(0x10, 0x1040).is_empty());
    }

    #[test]
    fn storage_accounting_matches_paper_per_entry_cost() {
        let d = StrideDetector::new(32);
        assert_eq!(d.storage_bits(), 32 * 115);
        // The paper rounds this to 460 bytes for 32 entries.
        assert_eq!(d.storage_bits() / 8, 460);
    }
}
