//! Exact JSON serialization of [`SimStats`] / [`MemStats`] for the
//! on-disk result store.
//!
//! Every counter is a `u64`, and the `vr-obs` JSON type keeps `u64`s
//! exact through a serialize → parse round trip, so a stored record
//! reproduces the in-memory stats **bit-identically** — the property
//! the `--cache` byte-identical-output contract rests on.
//!
//! Both directions are written with *exhaustive destructuring* (the
//! same idiom as `SimStats::delta`): adding a counter to either struct
//! without deciding how it persists is a compile error, never a field
//! that silently reads back as zero from old records. (Old records
//! missing the new field are rejected as corrupt by the strict reader
//! and recomputed — correct, if pessimistic; bumping
//! [`crate::CODE_SALT`] achieves the same end more explicitly.)

use vr_chip::ChipStats;
use vr_core::SimStats;
use vr_mem::MemStats;
use vr_obs::Json;

fn arr4(a: [u64; 4]) -> Json {
    Json::Arr(a.iter().map(|&v| Json::U64(v)).collect())
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing/non-u64 field `{key}`"))
}

fn get_arr4(j: &Json, key: &str) -> Result<[u64; 4], String> {
    let arr = j.get(key).and_then(Json::as_arr).ok_or_else(|| format!("missing array `{key}`"))?;
    if arr.len() != 4 {
        return Err(format!("array `{key}` has {} elements, want 4", arr.len()));
    }
    let mut out = [0u64; 4];
    for (o, v) in out.iter_mut().zip(arr) {
        *o = v.as_u64().ok_or_else(|| format!("non-u64 element in `{key}`"))?;
    }
    Ok(out)
}

/// Serializes the full stats record (including the nested
/// [`MemStats`]) as an insertion-ordered JSON object.
pub fn stats_to_json(s: &SimStats) -> Json {
    // Exhaustive: a new SimStats field fails to compile here.
    let SimStats {
        cycles,
        instructions,
        full_rob_stall_cycles,
        commit_stall_cycles,
        branches,
        mispredicts,
        runahead_entries,
        runahead_cycles,
        runahead_insts,
        delayed_termination_stall_cycles,
        vr_batches,
        vr_batches_aborted,
        vr_lanes_spawned,
        vr_lanes_invalidated,
        vr_lanes_reconverged,
        vr_no_stride_intervals,
        faults_injected,
        runahead_aborts,
        mem,
        mshr_occupancy_integral,
    } = *s;
    let MemStats {
        demand_loads,
        demand_stores,
        load_hits,
        load_merges,
        dram_reads,
        dram_writebacks,
        pf_issued,
        pf_used,
        pf_dropped_mshr,
        pf_dropped_fault,
        pf_delayed_fault,
        spec_stores,
        timeliness,
    } = mem;
    let mem_obj = Json::Obj(vec![
        ("demand_loads".into(), Json::U64(demand_loads)),
        ("demand_stores".into(), Json::U64(demand_stores)),
        ("load_hits".into(), arr4(load_hits)),
        ("load_merges".into(), Json::U64(load_merges)),
        ("dram_reads".into(), arr4(dram_reads)),
        ("dram_writebacks".into(), Json::U64(dram_writebacks)),
        ("pf_issued".into(), arr4(pf_issued)),
        ("pf_used".into(), arr4(pf_used)),
        ("pf_dropped_mshr".into(), Json::U64(pf_dropped_mshr)),
        ("pf_dropped_fault".into(), Json::U64(pf_dropped_fault)),
        ("pf_delayed_fault".into(), Json::U64(pf_delayed_fault)),
        ("spec_stores".into(), Json::U64(spec_stores)),
        ("timeliness".into(), arr4(timeliness)),
    ]);
    Json::Obj(vec![
        ("cycles".into(), Json::U64(cycles)),
        ("instructions".into(), Json::U64(instructions)),
        ("full_rob_stall_cycles".into(), Json::U64(full_rob_stall_cycles)),
        ("commit_stall_cycles".into(), Json::U64(commit_stall_cycles)),
        ("branches".into(), Json::U64(branches)),
        ("mispredicts".into(), Json::U64(mispredicts)),
        ("runahead_entries".into(), Json::U64(runahead_entries)),
        ("runahead_cycles".into(), Json::U64(runahead_cycles)),
        ("runahead_insts".into(), Json::U64(runahead_insts)),
        ("delayed_termination_stall_cycles".into(), Json::U64(delayed_termination_stall_cycles)),
        ("vr_batches".into(), Json::U64(vr_batches)),
        ("vr_batches_aborted".into(), Json::U64(vr_batches_aborted)),
        ("vr_lanes_spawned".into(), Json::U64(vr_lanes_spawned)),
        ("vr_lanes_invalidated".into(), Json::U64(vr_lanes_invalidated)),
        ("vr_lanes_reconverged".into(), Json::U64(vr_lanes_reconverged)),
        ("vr_no_stride_intervals".into(), Json::U64(vr_no_stride_intervals)),
        ("faults_injected".into(), Json::U64(faults_injected)),
        ("runahead_aborts".into(), Json::U64(runahead_aborts)),
        ("mem".into(), mem_obj),
        ("mshr_occupancy_integral".into(), Json::U64(mshr_occupancy_integral)),
    ])
}

/// Strict inverse of [`stats_to_json`]: every field must be present
/// and `u64`-typed.
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field — the
/// store treats any error here as record corruption (quarantine, then
/// recompute).
pub fn stats_from_json(j: &Json) -> Result<SimStats, String> {
    let mem_j = j.get("mem").ok_or("missing object `mem`")?;
    let mem = MemStats {
        demand_loads: get_u64(mem_j, "demand_loads")?,
        demand_stores: get_u64(mem_j, "demand_stores")?,
        load_hits: get_arr4(mem_j, "load_hits")?,
        load_merges: get_u64(mem_j, "load_merges")?,
        dram_reads: get_arr4(mem_j, "dram_reads")?,
        dram_writebacks: get_u64(mem_j, "dram_writebacks")?,
        pf_issued: get_arr4(mem_j, "pf_issued")?,
        pf_used: get_arr4(mem_j, "pf_used")?,
        pf_dropped_mshr: get_u64(mem_j, "pf_dropped_mshr")?,
        pf_dropped_fault: get_u64(mem_j, "pf_dropped_fault")?,
        pf_delayed_fault: get_u64(mem_j, "pf_delayed_fault")?,
        spec_stores: get_u64(mem_j, "spec_stores")?,
        timeliness: get_arr4(mem_j, "timeliness")?,
    };
    // Exhaustive struct literal: a new SimStats field fails to compile
    // here until a reader is written for it.
    Ok(SimStats {
        cycles: get_u64(j, "cycles")?,
        instructions: get_u64(j, "instructions")?,
        full_rob_stall_cycles: get_u64(j, "full_rob_stall_cycles")?,
        commit_stall_cycles: get_u64(j, "commit_stall_cycles")?,
        branches: get_u64(j, "branches")?,
        mispredicts: get_u64(j, "mispredicts")?,
        runahead_entries: get_u64(j, "runahead_entries")?,
        runahead_cycles: get_u64(j, "runahead_cycles")?,
        runahead_insts: get_u64(j, "runahead_insts")?,
        delayed_termination_stall_cycles: get_u64(j, "delayed_termination_stall_cycles")?,
        vr_batches: get_u64(j, "vr_batches")?,
        vr_batches_aborted: get_u64(j, "vr_batches_aborted")?,
        vr_lanes_spawned: get_u64(j, "vr_lanes_spawned")?,
        vr_lanes_invalidated: get_u64(j, "vr_lanes_invalidated")?,
        vr_lanes_reconverged: get_u64(j, "vr_lanes_reconverged")?,
        vr_no_stride_intervals: get_u64(j, "vr_no_stride_intervals")?,
        faults_injected: get_u64(j, "faults_injected")?,
        runahead_aborts: get_u64(j, "runahead_aborts")?,
        mem,
        mshr_occupancy_integral: get_u64(j, "mshr_occupancy_integral")?,
    })
}

/// Serializes the chip-level contention counters of one multi-core
/// point (the `chip/` record payload) with the same exhaustive
/// destructuring discipline as [`stats_to_json`].
pub fn chip_stats_to_json(s: &ChipStats) -> Json {
    // Exhaustive: a new ChipStats field fails to compile here.
    let ChipStats {
        cycles,
        bank_conflicts,
        arbitration_stall_cycles,
        shared_mshr_rejections,
        llc_hits,
        llc_misses,
        dram_writebacks,
    } = *s;
    Json::Obj(vec![
        ("cycles".into(), Json::U64(cycles)),
        ("bank_conflicts".into(), Json::U64(bank_conflicts)),
        ("arbitration_stall_cycles".into(), Json::U64(arbitration_stall_cycles)),
        ("shared_mshr_rejections".into(), Json::U64(shared_mshr_rejections)),
        ("llc_hits".into(), Json::U64(llc_hits)),
        ("llc_misses".into(), Json::U64(llc_misses)),
        ("dram_writebacks".into(), Json::U64(dram_writebacks)),
    ])
}

/// Strict inverse of [`chip_stats_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field (the
/// store quarantines such records and recomputes the point).
pub fn chip_stats_from_json(j: &Json) -> Result<ChipStats, String> {
    // Exhaustive struct literal, like `stats_from_json`.
    Ok(ChipStats {
        cycles: get_u64(j, "cycles")?,
        bank_conflicts: get_u64(j, "bank_conflicts")?,
        arbitration_stall_cycles: get_u64(j, "arbitration_stall_cycles")?,
        shared_mshr_rejections: get_u64(j, "shared_mshr_rejections")?,
        llc_hits: get_u64(j, "llc_hits")?,
        llc_misses: get_u64(j, "llc_misses")?,
        dram_writebacks: get_u64(j, "dram_writebacks")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_stats() -> SimStats {
        // Every field non-zero and distinct, extremes included, so a
        // swapped or dropped field cannot cancel out.
        SimStats {
            cycles: u64::MAX,
            instructions: 2,
            full_rob_stall_cycles: 3,
            commit_stall_cycles: 4,
            branches: 5,
            mispredicts: 6,
            runahead_entries: 7,
            runahead_cycles: 8,
            runahead_insts: 9,
            delayed_termination_stall_cycles: 10,
            vr_batches: 11,
            vr_batches_aborted: 12,
            vr_lanes_spawned: 13,
            vr_lanes_invalidated: 14,
            vr_lanes_reconverged: 15,
            vr_no_stride_intervals: 16,
            faults_injected: 17,
            runahead_aborts: 18,
            mem: MemStats {
                demand_loads: 19,
                demand_stores: 20,
                load_hits: [21, 22, 23, 24],
                load_merges: 25,
                dram_reads: [26, 27, 28, 29],
                dram_writebacks: 30,
                pf_issued: [31, 32, 33, 34],
                pf_used: [35, 36, 37, 38],
                pf_dropped_mshr: 39,
                pf_dropped_fault: 40,
                pf_delayed_fault: 41,
                spec_stores: 42,
                timeliness: [43, 44, 45, (1 << 53) + 1],
            },
            mshr_occupancy_integral: 46,
        }
    }

    #[test]
    fn round_trip_is_bit_exact_including_u64_extremes() {
        let s = dense_stats();
        for text in [stats_to_json(&s).to_string(), stats_to_json(&s).to_pretty()] {
            let parsed = Json::parse(&text).expect("self-emitted JSON parses");
            assert_eq!(stats_from_json(&parsed).expect("reads back"), s);
        }
        let d = SimStats::default();
        let round = stats_from_json(&Json::parse(&stats_to_json(&d).to_string()).unwrap()).unwrap();
        assert_eq!(round, d);
    }

    #[test]
    fn missing_and_mistyped_fields_are_rejected_with_the_field_name() {
        let j = stats_to_json(&dense_stats());
        // Remove one top-level field.
        let Json::Obj(members) = &j else { panic!() };
        let pruned = Json::Obj(members.iter().filter(|(k, _)| k != "branches").cloned().collect());
        let err = stats_from_json(&pruned).unwrap_err();
        assert!(err.contains("branches"), "{err}");
        // Mistype one nested field.
        let text = j.to_string().replace("\"spec_stores\":42", "\"spec_stores\":\"42\"");
        let err = stats_from_json(&Json::parse(&text).unwrap()).unwrap_err();
        assert!(err.contains("spec_stores"), "{err}");
        // Truncate a 4-array.
        let text = j.to_string().replace("[21,22,23,24]", "[21,22,23]");
        let err = stats_from_json(&Json::parse(&text).unwrap()).unwrap_err();
        assert!(err.contains("load_hits"), "{err}");
        // Not an object at all.
        assert!(stats_from_json(&Json::U64(1)).is_err());
    }

    #[test]
    fn chip_stats_round_trip_is_bit_exact_and_strict() {
        let s = ChipStats {
            cycles: u64::MAX,
            bank_conflicts: 2,
            arbitration_stall_cycles: 3,
            shared_mshr_rejections: 4,
            llc_hits: 5,
            llc_misses: 6,
            dram_writebacks: (1 << 53) + 1,
        };
        for text in [chip_stats_to_json(&s).to_string(), chip_stats_to_json(&s).to_pretty()] {
            let parsed = Json::parse(&text).expect("self-emitted JSON parses");
            assert_eq!(chip_stats_from_json(&parsed).expect("reads back"), s);
        }
        let j = chip_stats_to_json(&s);
        let Json::Obj(members) = &j else { panic!() };
        let pruned =
            Json::Obj(members.iter().filter(|(k, _)| k != "bank_conflicts").cloned().collect());
        let err = chip_stats_from_json(&pruned).unwrap_err();
        assert!(err.contains("bank_conflicts"), "{err}");
        assert!(chip_stats_from_json(&Json::U64(1)).is_err());
    }
}
