//! Stable fingerprints naming one simulation point.
//!
//! A *sim point* is everything that determines a run's statistics:
//! the workload (program text, initial memory image, initial
//! registers), the full configuration (core, memory system, runahead
//! engine — via the exhaustively-destructured fingerprint hooks in
//! `vr-core`/`vr-mem`), the instruction budget, and a code-version
//! salt. Two points with equal fingerprints simulate bit-identically,
//! so a stored result can stand in for a run.
//!
//! The salt ([`CODE_SALT`]) is the store's staleness lever: whenever a
//! change to the simulator alters *what* is simulated — i.e. whenever
//! the golden fingerprints in `crates/core/tests/golden_stats.rs` are
//! re-pinned — the salt must be bumped in the same commit, which
//! atomically invalidates every cached result (`gc` reclaims them).
//! Pure speed work that keeps the goldens bit-identical keeps the salt.

use vr_core::{CoreConfig, RunaheadConfig};
use vr_mem::MemConfig;
use vr_obs::Fnv64;
use vr_workloads::Workload;

/// Code-version salt folded into every fingerprint.
///
/// **Bump this in the same commit that re-pins
/// `crates/core/tests/golden_stats.rs`** (the only sanctioned way the
/// simulator's reported statistics may change). History:
///
/// * 1 — initial value, pinned to the post-PR-2 golden set.
pub const CODE_SALT: u64 = 1;

/// The 64-bit content address of one simulation point.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PointKey(pub u64);

impl PointKey {
    /// Filename-safe fixed-width hex rendering (the record's basename
    /// in the store).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`PointKey::hex`] rendering.
    pub fn from_hex(s: &str) -> Option<PointKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(PointKey)
    }
}

/// Fingerprints one simulation point (see the module docs for what
/// participates and why).
///
/// The workload is identified by *content*, not name: the program
/// listing, the initial-memory digest and the entry registers all
/// participate, so regenerating a workload with different inputs (a
/// different [`vr_workloads::Scale`], graph preset or seed) can never
/// alias a cached result.
pub fn point_key(
    w: &Workload,
    core: &CoreConfig,
    mem: &MemConfig,
    ra: &RunaheadConfig,
    max_insts: u64,
) -> PointKey {
    let mut h = Fnv64::new();
    h.write_str("vr-sim-point");
    h.write_u64(CODE_SALT);
    // Workload content.
    h.write_str(&w.name);
    h.write_str(&w.program.to_listing());
    h.write_u64(w.memory.digest());
    h.write_u64(w.init_regs.len() as u64);
    for &(r, v) in &w.init_regs {
        h.write_u64(r.index() as u64);
        h.write_u64(v);
    }
    // Configuration (exhaustive hooks in vr-core / vr-mem).
    core.fingerprint(&mut h);
    mem.fingerprint(&mut h);
    ra.fingerprint(&mut h);
    // Budget.
    h.write_u64(max_insts);
    PointKey(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_workloads::{hpcdb, Scale};

    #[test]
    fn hex_round_trips() {
        let k = PointKey(0x0123_4567_89ab_cdef);
        assert_eq!(k.hex(), "0123456789abcdef");
        assert_eq!(PointKey::from_hex(&k.hex()), Some(k));
        assert_eq!(PointKey::from_hex("123"), None);
        assert_eq!(PointKey::from_hex("zzzzzzzzzzzzzzzz"), None);
        // Leading zeros are preserved (fixed width).
        assert_eq!(PointKey(5).hex().len(), 16);
    }

    #[test]
    fn every_input_separates_the_key() {
        let w = hpcdb::kangaroo(Scale::Test);
        let base = || {
            point_key(
                &w,
                &CoreConfig::table1(),
                &MemConfig::table1(),
                &RunaheadConfig::none(),
                1000,
            )
        };
        assert_eq!(base(), base(), "deterministic");
        assert_ne!(
            base(),
            point_key(
                &w,
                &CoreConfig::table1(),
                &MemConfig::table1(),
                &RunaheadConfig::none(),
                999
            ),
            "budget participates"
        );
        assert_ne!(
            base(),
            point_key(
                &w,
                &CoreConfig::with_rob(128),
                &MemConfig::table1(),
                &RunaheadConfig::none(),
                1000
            ),
            "core config participates"
        );
        assert_ne!(
            base(),
            point_key(
                &w,
                &CoreConfig::table1(),
                &MemConfig::table1_oracle(),
                &RunaheadConfig::none(),
                1000
            ),
            "mem config participates"
        );
        assert_ne!(
            base(),
            point_key(
                &w,
                &CoreConfig::table1(),
                &MemConfig::table1(),
                &RunaheadConfig::vector(),
                1000
            ),
            "runahead config participates"
        );
        let other = hpcdb::camel(Scale::Test);
        assert_ne!(
            base(),
            point_key(
                &other,
                &CoreConfig::table1(),
                &MemConfig::table1(),
                &RunaheadConfig::none(),
                1000
            ),
            "workload content participates"
        );
    }

    #[test]
    fn workload_content_not_just_name_participates() {
        // Same kernel, different input scale: the name matches but the
        // memory image differs, so the key must differ.
        let a = hpcdb::kangaroo(Scale::Test);
        let mut b = hpcdb::kangaroo(Scale::Test);
        b.memory.write_u64(0x10_0000, 0xdead_beef);
        assert_eq!(a.name, b.name);
        let key = |w: &Workload| {
            point_key(w, &CoreConfig::table1(), &MemConfig::table1(), &RunaheadConfig::none(), 1000)
        };
        assert_ne!(key(&a), key(&b), "initial memory participates");
    }
}
