//! Deterministic fault injection behind the result store's I/O
//! (compiled only with the `chaos` cargo feature).
//!
//! The store's durability claims — atomic publish, quarantine-never-
//! crash validation, resumability from any kill point — were only
//! exercised by hand-built corruption shapes until this module. A
//! [`FaultFs`] sits behind every filesystem operation the store
//! performs and injects, from one seeded [`SplitMix64`] stream
//! (the same zero-dependency generator the simulator's `FaultPlan`
//! uses), the faults a long campaign actually meets:
//!
//! * **torn writes** — a prefix of the bytes lands on disk and the
//!   write reports failure (power loss / partial flush mid-`write`);
//! * **rename failures** — the atomic publish itself fails, leaving
//!   the temp file behind;
//! * **crash before / after a mutating op** — at a scheduled op index
//!   the "process dies": with `crash_before` the op never happens,
//!   without it the op completes but the caller never learns; every
//!   subsequent operation fails (the process is dead). Scheduling the
//!   crash on a rename models the two interesting kill points of the
//!   publish protocol exactly;
//! * **bit flips on read** — silent media/transfer corruption: the
//!   on-disk file is intact but the bytes the reader sees are not;
//! * **ENOSPC** — the write fails up front with
//!   [`io::ErrorKind::StorageFull`], nothing lands on disk.
//!
//! Determinism contract: one `FaultFs` with one seed produces one
//! fault schedule, provided the operation order is deterministic —
//! chaos tests therefore drive the campaign single-threaded.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use vr_isa::SplitMix64;

/// Fault probabilities and the crash schedule for one [`FaultFs`].
/// Probabilities are per-operation Bernoulli draws from the seeded
/// stream; the crash is a deterministic op index.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the fault stream (equal seeds, equal schedules).
    pub seed: u64,
    /// Probability a write lands only a prefix and reports failure.
    pub torn_write: f64,
    /// Probability a rename (the atomic publish) fails.
    pub rename_fail: f64,
    /// Probability a read returns the file's bytes with one bit
    /// flipped.
    pub bitflip_read: f64,
    /// Probability a write fails up front with `StorageFull`.
    pub enospc: f64,
    /// Mutating-op index (0-based: writes, renames, removes) at which
    /// the simulated process dies. `None` never crashes.
    pub crash_at_op: Option<u64>,
    /// Die *before* the crash op takes effect (true) or just after it
    /// completed (false). On a rename op these are exactly
    /// crash-before-publish and crash-after-publish.
    pub crash_before: bool,
}

impl ChaosConfig {
    /// No faults at all — useful to count a schedule's mutating ops.
    pub fn quiet() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            torn_write: 0.0,
            rename_fail: 0.0,
            bitflip_read: 0.0,
            enospc: 0.0,
            crash_at_op: None,
            crash_before: false,
        }
    }

    /// A mixed-fault schedule derived entirely from `seed`: every
    /// fault kind gets a nonzero rate and the crash point is drawn
    /// from the stream (bounded by `op_bound` so it can actually land
    /// within the run).
    pub fn storm(seed: u64, op_bound: u64) -> ChaosConfig {
        let mut rng = SplitMix64::new(seed);
        ChaosConfig {
            seed: rng.next_u64(),
            torn_write: 0.05 + 0.20 * rng.f64_unit(),
            rename_fail: 0.05 + 0.15 * rng.f64_unit(),
            bitflip_read: 0.02 + 0.10 * rng.f64_unit(),
            enospc: 0.02 + 0.10 * rng.f64_unit(),
            crash_at_op: Some(rng.below(op_bound.max(1))),
            crash_before: rng.flip(),
        }
    }

    /// Only a crash at `op` (before/after), no probabilistic faults —
    /// the exhaustive-interleaving test walks every op index with
    /// this.
    pub fn crash_only(op: u64, before: bool) -> ChaosConfig {
        ChaosConfig { crash_at_op: Some(op), crash_before: before, ..ChaosConfig::quiet() }
    }
}

/// Snapshot of what a [`FaultFs`] actually injected.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ChaosCounters {
    /// Mutating operations observed (writes, renames, removes).
    pub mutating_ops: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Rename failures injected.
    pub rename_fails: u64,
    /// Read bit flips injected.
    pub bitflips: u64,
    /// ENOSPC failures injected.
    pub enospc: u64,
    /// Whether the simulated process death happened.
    pub crashed: bool,
}

/// Whether a mutating op is the scheduled crash point.
enum CrashWhen {
    No,
    After,
}

/// The injection seam. One instance guards one store; all methods are
/// `&self` (the store is shared across workers) with the RNG behind a
/// mutex — fault draws are serialized, which is exactly the
/// determinism the tests need.
#[derive(Debug)]
pub struct FaultFs {
    cfg: ChaosConfig,
    rng: Mutex<SplitMix64>,
    ops: AtomicU64,
    torn_writes: AtomicU64,
    rename_fails: AtomicU64,
    bitflips: AtomicU64,
    enospc: AtomicU64,
    crashed: AtomicBool,
}

impl FaultFs {
    /// Builds the seam from a fault plan.
    pub fn new(cfg: ChaosConfig) -> FaultFs {
        FaultFs {
            rng: Mutex::new(SplitMix64::new(cfg.seed)),
            cfg,
            ops: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            rename_fails: AtomicU64::new(0),
            bitflips: AtomicU64::new(0),
            enospc: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// What was injected so far.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            mutating_ops: self.ops.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            rename_fails: self.rename_fails.load(Ordering::Relaxed),
            bitflips: self.bitflips.load(Ordering::Relaxed),
            enospc: self.enospc.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
        }
    }

    /// Whether the simulated process death has happened.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    fn dead() -> io::Error {
        io::Error::other("chaos: process crashed (injected)")
    }

    /// Accounts one mutating op; errors if the process is already
    /// dead, kills it here if this op is a crash-before point.
    fn begin_mutation(&self) -> io::Result<CrashWhen> {
        if self.crashed() {
            return Err(Self::dead());
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.cfg.crash_at_op == Some(op) {
            if self.cfg.crash_before {
                self.crashed.store(true, Ordering::Release);
                return Err(Self::dead());
            }
            return Ok(CrashWhen::After);
        }
        Ok(CrashWhen::No)
    }

    /// Applies a crash-after: the op's effect stands, but the caller
    /// learns nothing (the process died before observing the result).
    fn end_mutation(&self, when: CrashWhen, result: io::Result<()>) -> io::Result<()> {
        if matches!(when, CrashWhen::After) {
            self.crashed.store(true, Ordering::Release);
            result?;
            return Err(Self::dead());
        }
        result
    }

    /// `fs::write` behind the seam: may fail with ENOSPC (nothing
    /// written), land a torn prefix, or be a crash point.
    pub fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let when = self.begin_mutation()?;
        let fault = {
            let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if rng.chance(self.cfg.enospc) {
                Some(Err(io::Error::new(io::ErrorKind::StorageFull, "chaos: disk full (injected)")))
            } else if rng.chance(self.cfg.torn_write) {
                Some(Ok(rng.below(bytes.len() as u64) as usize))
            } else {
                None
            }
        };
        let result = match fault {
            Some(Err(e)) => {
                self.enospc.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Some(Ok(keep)) => {
                self.torn_writes.fetch_add(1, Ordering::Relaxed);
                // The prefix really lands on disk; the caller sees a
                // failure, exactly like a power cut mid-flush.
                fs::write(path, &bytes[..keep])?;
                Err(io::Error::new(io::ErrorKind::WriteZero, "chaos: torn write (injected)"))
            }
            None => fs::write(path, bytes),
        };
        self.end_mutation(when, result)
    }

    /// `fs::rename` behind the seam: may fail outright (temp file left
    /// behind) or be a crash point — before (publish never happens) or
    /// after (record durable, writer dead).
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let when = self.begin_mutation()?;
        let fail = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .chance(self.cfg.rename_fail);
        let result = if fail {
            self.rename_fails.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::other("chaos: rename failed (injected)"))
        } else {
            fs::rename(from, to)
        };
        self.end_mutation(when, result)
    }

    /// `fs::remove_file` behind the seam (crash gating only).
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        let when = self.begin_mutation()?;
        let result = fs::remove_file(path);
        self.end_mutation(when, result)
    }

    /// `fs::read_to_string` behind the seam: non-mutating (no op
    /// accounting), but a dead process reads nothing and a live one
    /// may see a single flipped bit. The file itself is untouched.
    pub fn read_to_string(&self, path: &Path) -> io::Result<String> {
        if self.crashed() {
            return Err(Self::dead());
        }
        let text = fs::read_to_string(path)?;
        let flip = {
            let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            (!text.is_empty() && rng.chance(self.cfg.bitflip_read))
                .then(|| (rng.below(text.len() as u64) as usize, rng.below(8) as u32))
        };
        let Some((byte, bit)) = flip else { return Ok(text) };
        self.bitflips.fetch_add(1, Ordering::Relaxed);
        let mut bytes = text.into_bytes();
        bytes[byte] ^= 1 << bit;
        // A flip can break UTF-8; the reader cannot tell that apart
        // from any other unreadable file, so surface it as an error
        // (the store treats both as corrupt).
        String::from_utf8(bytes)
            .map_err(|_| io::Error::other("chaos: bit flip produced invalid utf-8 (injected)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vr-chaos-unit-{tag}-{}-{}",
            std::process::id(),
            crate::test_nonce()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn equal_seeds_inject_identical_schedules() {
        let run = || {
            let dir = scratch("det");
            let f = FaultFs::new(ChaosConfig { crash_at_op: None, ..ChaosConfig::storm(77, 64) });
            let mut outcomes = Vec::new();
            for i in 0..40 {
                let p = dir.join(format!("f{i}"));
                outcomes.push(f.write(&p, b"0123456789abcdef").is_ok());
                outcomes.push(f.read_to_string(&p).map(|t| t.len()).is_ok());
                let q = dir.join(format!("g{i}"));
                outcomes.push(f.rename(&p, &q).is_ok());
            }
            fs::remove_dir_all(&dir).ok();
            (outcomes, f.counters())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b, "fault schedule must be a pure function of the seed");
        assert_eq!(ca, cb);
        assert!(
            ca.torn_writes + ca.rename_fails + ca.bitflips + ca.enospc > 0,
            "storm injected nothing: {ca:?}"
        );
    }

    #[test]
    fn crash_before_skips_the_op_and_kills_everything_after() {
        let dir = scratch("crash-before");
        let f = FaultFs::new(ChaosConfig::crash_only(1, true));
        let a = dir.join("a");
        let b = dir.join("b");
        assert!(f.write(&a, b"one").is_ok(), "op 0 runs normally");
        assert!(f.rename(&a, &b).is_err(), "op 1 is the crash point");
        assert!(!b.exists(), "crash-before: the rename never happened");
        assert!(a.exists());
        assert!(f.write(&a, b"x").is_err(), "the process is dead");
        assert!(f.read_to_string(&a).is_err(), "dead processes do not read");
        assert!(f.counters().crashed);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_after_applies_the_op_but_reports_failure() {
        let dir = scratch("crash-after");
        let f = FaultFs::new(ChaosConfig::crash_only(1, false));
        let a = dir.join("a");
        let b = dir.join("b");
        assert!(f.write(&a, b"one").is_ok());
        assert!(f.rename(&a, &b).is_err(), "caller sees a failure...");
        assert!(b.exists(), "...but crash-after means the publish is durable");
        assert!(!a.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_lands_a_strict_prefix() {
        let dir = scratch("torn");
        let f = FaultFs::new(ChaosConfig { torn_write: 1.0, ..ChaosConfig::quiet() });
        let p = dir.join("t");
        let payload = b"0123456789abcdef0123456789abcdef";
        assert!(f.write(&p, payload).is_err());
        let on_disk = fs::read(&p).unwrap();
        assert!(on_disk.len() < payload.len());
        assert_eq!(&payload[..on_disk.len()], &on_disk[..]);
        assert_eq!(f.counters().torn_writes, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_writes_nothing() {
        let dir = scratch("enospc");
        let f = FaultFs::new(ChaosConfig { enospc: 1.0, ..ChaosConfig::quiet() });
        let p = dir.join("t");
        let err = f.write(&p, b"payload").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(!p.exists(), "ENOSPC must not leave a partial file");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_changes_exactly_one_bit_and_leaves_the_file_alone() {
        let dir = scratch("flip");
        let f = FaultFs::new(ChaosConfig { bitflip_read: 1.0, seed: 3, ..ChaosConfig::quiet() });
        let p = dir.join("t");
        fs::write(&p, "aaaaaaaaaaaaaaaa").unwrap();
        // Some flips land outside ASCII and surface as utf-8 errors;
        // either way the on-disk bytes never change.
        match f.read_to_string(&p) {
            Ok(seen) => {
                let diff: u32 = seen
                    .bytes()
                    .zip("aaaaaaaaaaaaaaaa".bytes())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(diff, 1, "exactly one flipped bit");
            }
            Err(e) => assert!(e.to_string().contains("bit flip")),
        }
        assert_eq!(fs::read_to_string(&p).unwrap(), "aaaaaaaaaaaaaaaa");
        assert_eq!(f.counters().bitflips, 1);
        fs::remove_dir_all(&dir).ok();
    }
}
