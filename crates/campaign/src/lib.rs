//! Content-addressed result store + resumable sweep-campaign engine
//! for the experiment harness.
//!
//! The experiment figures re-simulate every point on every invocation.
//! This crate removes that: a simulation point is *content-addressed*
//! by a stable fingerprint of everything that determines its
//! statistics ([`point_key`]), its [`SimStats`](vr_core::SimStats) are
//! stored on disk exactly ([`ResultStore`]), and a campaign driver
//! ([`run_campaign`]) computes only the points that are missing —
//! surviving kills, corruption and transient faults along the way.
//!
//! Layering (DESIGN.md §11):
//!
//! * [`fingerprint`] — [`PointKey`] and the [`CODE_SALT`] staleness
//!   lever;
//! * [`serial`] — exact (bit-identical round trip) JSON serialization
//!   of the stats structs;
//! * [`store`] — the on-disk store: atomic publishes, per-record
//!   checksums, quarantine-not-crash corruption handling, `verify` /
//!   `gc` maintenance;
//! * [`engine`] — the campaign driver: shared-injector worker pool,
//!   in-place retry with bounded backoff, cooperative cancellation,
//!   resumability.
//!
//! The crate depends only on the simulator crates and `std` — no
//! registry dependencies, like the rest of the workspace.

#![warn(missing_docs)]

#[cfg(feature = "chaos")]
pub mod chaos;
pub mod chip;
pub mod engine;
pub mod fingerprint;
pub mod serial;
pub mod serve;
pub mod store;

pub use chip::{chip_core_key, chip_point_key, ChipPoint, ChipSlot};
pub use engine::{
    campaign_status, run_campaign, run_campaign_on, CampaignOutcome, CampaignPoint, CancelToken,
    EngineConfig, ExecCtx, Executor, ProgressEvent, ProgressKind, ProgressSink, SimExecutor,
    StatusReport, SweepPoint, POISON_DEADLINE_TRIPS,
};
pub use fingerprint::{point_key, PointKey, CODE_SALT};
// The worker pool moved to its own crate (`vr-pool`) so `vr-chip`
// can step cores on it without a dependency cycle; re-exported here
// for the existing `vr_campaign::WorkerPool` users.
pub use serial::{chip_stats_from_json, chip_stats_to_json, stats_from_json, stats_to_json};
pub use serve::{
    serve_lines, serve_spool, shard_of, Manifest, PointSet, ServeConfig, ServeSummary, ShardSpec,
};
pub use store::{
    snapshot_records, GcReport, PoisonRecord, ResultStore, StoreCounters, VerifyReport,
    TMP_GC_GRACE,
};
pub use vr_pool::WorkerPool;

/// Unique-per-call nonce for test scratch directories (process id is
/// not enough: tests in one process share it).
#[cfg(test)]
pub(crate) fn test_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    N.fetch_add(1, Ordering::Relaxed)
}
