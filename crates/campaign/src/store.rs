//! The on-disk content-addressed result store.
//!
//! Layout under the store root (`--cache DIR`):
//!
//! ```text
//! DIR/
//!   records/<key-hex16>.json   one simulation result per point key
//!   quarantine/<name>.<nanos>  records that failed validation
//! ```
//!
//! **Crash consistency.** A record is written to a unique temp file in
//! `records/` and published with [`std::fs::rename`] — atomic on every
//! POSIX filesystem — so a reader (including a concurrent process)
//! sees either no record or a complete one, never a torn write. A
//! process killed mid-campaign (SIGTERM, SIGKILL, OOM) therefore
//! leaves the store consistent: finished points are durable, the
//! in-flight point at most leaves a `.tmp-*` file that [`ResultStore::gc`]
//! reclaims.
//!
//! **Corruption policy.** Every load fully validates the record:
//! schema tag, embedded key vs filename, code-version salt, payload
//! checksum, and a strict field-exhaustive stats parse. Salt mismatch
//! means *stale* (a legitimate record from an older simulator) — it is
//! treated as a miss and left for `gc`. Everything else means
//! *corrupt* — the record is moved into `quarantine/` (never deleted:
//! the bytes may matter for diagnosis) and the point is recomputed.
//! No store problem ever panics the caller; the worst case is a cache
//! miss.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use vr_core::SimStats;
use vr_obs::{Fnv64, Json, RESULTSTORE_SCHEMA};

use crate::fingerprint::{PointKey, CODE_SALT};
use crate::serial::{stats_from_json, stats_to_json};

/// Monotonic discriminator making concurrent temp-file names unique
/// within a process (the name also carries the pid for cross-process
/// uniqueness).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Why a load did not produce a result (beyond a simple absence).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RecordFault {
    /// Valid record from an older code version (salt mismatch).
    Stale,
    /// Unparseable / checksum-mismatched / wrong-key record.
    Corrupt,
}

/// Point-in-time snapshot of the store's session counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StoreCounters {
    /// Loads that returned a validated record.
    pub hits: u64,
    /// Loads that found no record (and will trigger a computation).
    pub misses: u64,
    /// Loads/verifies that found a stale-salt record.
    pub stale: u64,
    /// Loads/verifies that quarantined a corrupt record.
    pub quarantined: u64,
    /// Records written (published via atomic rename).
    pub writes: u64,
}

/// Result of a full [`ResultStore::verify`] pass.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct VerifyReport {
    /// Records that validated end-to-end.
    pub ok: u64,
    /// Valid records with an old code-version salt.
    pub stale: u64,
    /// Corrupt records moved to quarantine by this pass.
    pub quarantined: u64,
    /// Orphaned temp files from an interrupted writer.
    pub tmp_files: u64,
    /// Files already sitting in quarantine.
    pub quarantine_backlog: u64,
}

impl VerifyReport {
    /// True when the store contains nothing but valid current records.
    pub fn clean(&self) -> bool {
        self.stale == 0 && self.quarantined == 0 && self.tmp_files == 0
    }
}

/// Result of a [`ResultStore::gc`] pass.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct GcReport {
    /// Stale-salt records removed.
    pub stale_removed: u64,
    /// Corrupt records removed (quarantined first, then reclaimed).
    pub corrupt_removed: u64,
    /// Orphaned temp files removed.
    pub tmp_removed: u64,
    /// Quarantined files removed.
    pub quarantine_removed: u64,
    /// Valid current records kept.
    pub kept: u64,
}

/// The content-addressed result store. All methods take `&self`:
/// counters are atomic and every filesystem mutation is a
/// single-syscall atomic publish (rename) or removal, so one store
/// handle is shared freely across sweep workers.
#[derive(Debug)]
pub struct ResultStore {
    records: PathBuf,
    quarantine: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    quarantined: AtomicU64,
    writes: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if necessary) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directories cannot be
    /// created.
    pub fn open(root: &Path) -> io::Result<ResultStore> {
        let records = root.join("records");
        let quarantine = root.join("quarantine");
        fs::create_dir_all(&records)?;
        fs::create_dir_all(&quarantine)?;
        Ok(ResultStore {
            records,
            quarantine,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The directory holding record files.
    pub fn records_dir(&self) -> &Path {
        &self.records
    }

    fn record_path(&self, key: PointKey) -> PathBuf {
        self.records.join(format!("{}.json", key.hex()))
    }

    /// Loads and fully validates the record for `key`. `None` is a
    /// miss — absent, stale, or quarantined-just-now (see the module
    /// docs for the policy). Never panics on store contents.
    pub fn load(&self, key: PointKey) -> Option<SimStats> {
        let path = self.record_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                // Unreadable is indistinguishable from corrupt.
                self.quarantine_record(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match validate_record(&text, Some(key)) {
            Ok(stats) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stats)
            }
            Err(RecordFault::Stale) => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(RecordFault::Corrupt) => {
                self.quarantine_record(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a record file exists for `key` (existence only — no
    /// validation; `campaign status` uses this as a cheap census and
    /// leaves full validation to `verify`).
    pub fn contains(&self, key: PointKey) -> bool {
        self.record_path(key).exists()
    }

    /// Persists `stats` for `key` via the atomic temp-file + rename
    /// protocol.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (callers treat a failed save
    /// as "result not cached", never as a failed computation).
    pub fn save(&self, key: PointKey, label: &str, stats: &SimStats) -> io::Result<()> {
        let payload = stats_to_json(stats);
        let checksum = payload_checksum(&payload);
        let record = Json::Obj(vec![
            ("schema".into(), Json::from(RESULTSTORE_SCHEMA)),
            ("key".into(), Json::from(key.hex())),
            ("salt".into(), Json::U64(CODE_SALT)),
            ("label".into(), Json::from(label)),
            ("checksum".into(), Json::from(checksum)),
            ("stats".into(), payload),
        ]);
        let tmp = self.records.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, record.to_pretty())?;
        let publish = fs::rename(&tmp, self.record_path(key));
        if publish.is_err() {
            // Never leave the temp file behind on a failed publish.
            let _ = fs::remove_file(&tmp);
        }
        publish?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Full-store validation sweep: every record is parsed and
    /// checked; corrupt ones are quarantined as a side effect (the
    /// maintenance counterpart of the per-load checks).
    ///
    /// # Errors
    ///
    /// Returns the underlying error only if the store directories
    /// cannot be listed; per-record problems are counted, not raised.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut rep = VerifyReport::default();
        for entry in sorted_entries(&self.records)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                rep.tmp_files += 1;
                continue;
            }
            let key = name.strip_suffix(".json").and_then(PointKey::from_hex);
            let outcome = fs::read_to_string(entry.path())
                .map_err(|_| RecordFault::Corrupt)
                .and_then(|text| match key {
                    Some(k) => validate_record(&text, Some(k)).map(|_| ()),
                    // A record file not even named by a key is corrupt
                    // by construction.
                    None => Err(RecordFault::Corrupt),
                });
            match outcome {
                Ok(()) => rep.ok += 1,
                Err(RecordFault::Stale) => {
                    self.stale.fetch_add(1, Ordering::Relaxed);
                    rep.stale += 1;
                }
                Err(RecordFault::Corrupt) => {
                    self.quarantine_record(&entry.path());
                    rep.quarantined += 1;
                }
            }
        }
        rep.quarantine_backlog = sorted_entries(&self.quarantine)?.len() as u64;
        Ok(rep)
    }

    /// Reclaims everything that is not a valid current record:
    /// stale-salt records, corrupt records, orphaned temp files and
    /// the quarantine backlog.
    ///
    /// # Errors
    ///
    /// Returns the underlying error only if the store directories
    /// cannot be listed.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut rep = GcReport::default();
        for entry in sorted_entries(&self.records)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                if fs::remove_file(entry.path()).is_ok() {
                    rep.tmp_removed += 1;
                }
                continue;
            }
            let key = name.strip_suffix(".json").and_then(PointKey::from_hex);
            let outcome = fs::read_to_string(entry.path())
                .map_err(|_| RecordFault::Corrupt)
                .and_then(|text| match key {
                    Some(k) => validate_record(&text, Some(k)).map(|_| ()),
                    None => Err(RecordFault::Corrupt),
                });
            match outcome {
                Ok(()) => rep.kept += 1,
                Err(RecordFault::Stale) => {
                    if fs::remove_file(entry.path()).is_ok() {
                        rep.stale_removed += 1;
                    }
                }
                Err(RecordFault::Corrupt) => {
                    if fs::remove_file(entry.path()).is_ok() {
                        rep.corrupt_removed += 1;
                    }
                }
            }
        }
        for entry in sorted_entries(&self.quarantine)? {
            if fs::remove_file(entry.path()).is_ok() {
                rep.quarantine_removed += 1;
            }
        }
        Ok(rep)
    }

    /// Number of record files currently published (cheap census; does
    /// not validate).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the records directory cannot be
    /// listed.
    pub fn len(&self) -> io::Result<usize> {
        Ok(sorted_entries(&self.records)?
            .iter()
            .filter(|e| !e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count())
    }

    /// Whether the store holds no records.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the records directory cannot be
    /// listed.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Snapshot of the session counters (hits/misses/… since `open`).
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Moves a failed record into `quarantine/` (unique suffix so
    /// repeated corruption never collides). Best-effort: on rename
    /// failure the record is deleted instead, and if even that fails
    /// the store degrades to treating the key as a permanent miss.
    fn quarantine_record(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        let nanos = std::time::UNIX_EPOCH
            .elapsed()
            .map_or(0, |d| d.as_nanos() as u64)
            .wrapping_add(TMP_SEQ.fetch_add(1, Ordering::Relaxed));
        let dest = self.quarantine.join(format!("{name}.{nanos:016x}"));
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }
}

/// Checksum of the serialized stats payload: FNV-1a over the
/// *compact* rendering (whitespace-independent, so the pretty record
/// layout may change without invalidating checksums).
fn payload_checksum(payload: &Json) -> String {
    let mut h = Fnv64::new();
    h.write_bytes(payload.to_string().as_bytes());
    format!("{:016x}", h.finish())
}

/// Full record validation. `expect_key` is the key implied by the
/// filename; `None` skips the filename cross-check (not used today,
/// but keeps the signature honest about what is being checked).
fn validate_record(text: &str, expect_key: Option<PointKey>) -> Result<SimStats, RecordFault> {
    let doc = Json::parse(text).map_err(|_| RecordFault::Corrupt)?;
    if doc.get("schema").and_then(Json::as_str) != Some(RESULTSTORE_SCHEMA) {
        return Err(RecordFault::Corrupt);
    }
    let embedded = doc
        .get("key")
        .and_then(Json::as_str)
        .and_then(PointKey::from_hex)
        .ok_or(RecordFault::Corrupt)?;
    if let Some(k) = expect_key {
        if embedded != k {
            return Err(RecordFault::Corrupt);
        }
    }
    let payload = doc.get("stats").ok_or(RecordFault::Corrupt)?;
    let checksum = doc.get("checksum").and_then(Json::as_str).ok_or(RecordFault::Corrupt)?;
    if checksum != payload_checksum(payload) {
        return Err(RecordFault::Corrupt);
    }
    let stats = stats_from_json(payload).map_err(|_| RecordFault::Corrupt)?;
    // Salt last: a record must be *well-formed* to be merely stale —
    // a garbled record with a garbled salt is corrupt, not stale.
    match doc.get("salt").and_then(Json::as_u64) {
        Some(CODE_SALT) => Ok(stats),
        Some(_) => Err(RecordFault::Stale),
        None => Err(RecordFault::Corrupt),
    }
}

/// Directory entries in sorted name order (deterministic maintenance
/// reports regardless of filesystem enumeration order).
fn sorted_entries(dir: &Path) -> io::Result<Vec<fs::DirEntry>> {
    let mut v: Vec<fs::DirEntry> = fs::read_dir(dir)?.filter_map(Result::ok).collect();
    v.sort_by_key(fs::DirEntry::file_name);
    Ok(v)
}
