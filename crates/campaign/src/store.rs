//! The on-disk content-addressed result store.
//!
//! Layout under the store root (`--cache DIR`):
//!
//! ```text
//! DIR/
//!   records/<key-hex16>.json   one simulation result per point key
//!   chip/<key-hex16>.json      chip-level contention counters of one
//!                              multi-core point (its per-core stats
//!                              are ordinary records under derived
//!                              keys — see `crate::chip`)
//!   poison/<key-hex16>.json    structured failure records for points
//!                              the campaign supervisor gave up on
//!   quarantine/<name>.<nanos>  records that failed validation
//! ```
//!
//! **Crash consistency.** A record is written to a unique temp file in
//! `records/` and published with [`std::fs::rename`] — atomic on every
//! POSIX filesystem — so a reader (including a concurrent process)
//! sees either no record or a complete one, never a torn write. A
//! process killed mid-campaign (SIGTERM, SIGKILL, OOM) therefore
//! leaves the store consistent: finished points are durable, the
//! in-flight point at most leaves a `.tmp-*` file that [`ResultStore::gc`]
//! reclaims. Temp-file reclamation is **age-gated** (default
//! [`TMP_GC_GRACE`]): a `gc` running beside a live writer must not
//! delete the temp file that writer is about to rename.
//!
//! **Corruption policy.** Every load fully validates the record:
//! schema tag, embedded key vs filename, code-version salt, payload
//! checksum, and a strict field-exhaustive stats parse. Salt mismatch
//! means *stale* (a legitimate record from an older simulator) — it is
//! treated as a miss and left for `gc`. Everything else means
//! *corrupt* — the record is moved into `quarantine/` (never deleted:
//! the bytes may matter for diagnosis) and the point is recomputed.
//! No store problem ever panics the caller; the worst case is a cache
//! miss.
//!
//! **Poison records.** When the campaign supervisor declares a point
//! unrunnable (retries exhausted, repeated deadline trips) it writes a
//! [`PoisonRecord`] under `poison/` through the same atomic publish
//! protocol and the same validation policy (corrupt poison records are
//! quarantined, stale-salt ones ignored). A poisoned point is skipped
//! on re-runs — the campaign *degrades* instead of wedging on a
//! permanently failing point — and `gc` clears poison records, which
//! is the deliberate "retry everything" lever.
//!
//! **Fault injection.** With the `chaos` cargo feature, every
//! filesystem operation above can be routed through a seeded
//! [`crate::chaos::FaultFs`] ([`ResultStore::open_with_chaos`]); the
//! production build compiles to plain `std::fs` calls.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use vr_chip::ChipStats;
use vr_core::SimStats;
use vr_obs::{Fnv64, Json, CAMPAIGN_SCHEMA, CHIPSTORE_SCHEMA, RESULTSTORE_SCHEMA};

use crate::fingerprint::{PointKey, CODE_SALT};
use crate::serial::{chip_stats_from_json, chip_stats_to_json, stats_from_json, stats_to_json};

/// Minimum age a `.tmp-*` file must reach before a default
/// [`ResultStore::gc`] reclaims it. A temp file younger than this may
/// belong to a writer that is alive *right now*, about to publish;
/// deleting it would fail that writer's rename and lose a finished
/// simulation. Sixty seconds dwarfs any write-to-rename window while
/// still reclaiming genuinely orphaned files on the next maintenance
/// pass. Use [`ResultStore::gc_with_tmp_age`] with [`Duration::ZERO`]
/// when the store is known quiescent (e.g. recovering after a kill).
pub const TMP_GC_GRACE: Duration = Duration::from_secs(60);

/// Monotonic discriminator making concurrent temp-file names unique
/// within a process (the name also carries the pid for cross-process
/// uniqueness).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Why a load did not produce a result (beyond a simple absence).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RecordFault {
    /// Valid record from an older code version (salt mismatch).
    Stale,
    /// Unparseable / checksum-mismatched / wrong-key record.
    Corrupt,
}

/// Point-in-time snapshot of the store's session counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StoreCounters {
    /// Loads that returned a validated record.
    pub hits: u64,
    /// Loads that found no record (and will trigger a computation).
    pub misses: u64,
    /// Loads/verifies that found a stale-salt record.
    pub stale: u64,
    /// Loads/verifies that quarantined a corrupt record.
    pub quarantined: u64,
    /// Records written (published via atomic rename).
    pub writes: u64,
}

/// Result of a full [`ResultStore::verify`] pass.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct VerifyReport {
    /// Records that validated end-to-end.
    pub ok: u64,
    /// Valid records with an old code-version salt.
    pub stale: u64,
    /// Corrupt records moved to quarantine by this pass.
    pub quarantined: u64,
    /// Orphaned temp files from an interrupted writer.
    pub tmp_files: u64,
    /// Files already sitting in quarantine.
    pub quarantine_backlog: u64,
    /// Valid poison records (points the supervisor gave up on).
    pub poisoned: u64,
}

impl VerifyReport {
    /// True when the store contains nothing but valid current records.
    /// Poison records do not dirty the store: they are deliberate,
    /// validated state, not damage.
    pub fn clean(&self) -> bool {
        self.stale == 0 && self.quarantined == 0 && self.tmp_files == 0
    }
}

/// Result of a [`ResultStore::gc`] pass.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct GcReport {
    /// Stale-salt records removed.
    pub stale_removed: u64,
    /// Corrupt records removed (quarantined first, then reclaimed).
    pub corrupt_removed: u64,
    /// Orphaned temp files removed.
    pub tmp_removed: u64,
    /// Temp files kept because they are younger than the age gate
    /// (possibly a live writer's).
    pub tmp_kept: u64,
    /// Quarantined files removed.
    pub quarantine_removed: u64,
    /// Poison records removed (those points become runnable again).
    pub poison_removed: u64,
    /// Valid current records kept.
    pub kept: u64,
}

/// A structured failure record for a point the campaign supervisor
/// declared unrunnable. Persisted under `poison/` so re-runs skip the
/// point instead of burning its retry budget again; cleared by
/// [`ResultStore::gc`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PoisonRecord {
    /// The point's content-address.
    pub key: PointKey,
    /// Human-readable point label (workload / config).
    pub label: String,
    /// Rendering of the last error the point produced.
    pub error: String,
    /// Execution attempts consumed before giving up.
    pub attempts: u32,
    /// How many of those attempts were killed by the wall-clock
    /// deadline.
    pub deadline_trips: u32,
}

/// The content-addressed result store. All methods take `&self`:
/// counters are atomic and every filesystem mutation is a
/// single-syscall atomic publish (rename) or removal, so one store
/// handle is shared freely across sweep workers.
#[derive(Debug)]
pub struct ResultStore {
    records: PathBuf,
    chip: PathBuf,
    poison: PathBuf,
    quarantine: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    quarantined: AtomicU64,
    writes: AtomicU64,
    #[cfg(feature = "chaos")]
    chaos: Option<crate::chaos::FaultFs>,
}

impl ResultStore {
    /// Opens (creating if necessary) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directories cannot be
    /// created.
    pub fn open(root: &Path) -> io::Result<ResultStore> {
        let records = root.join("records");
        let chip = root.join("chip");
        let poison = root.join("poison");
        let quarantine = root.join("quarantine");
        fs::create_dir_all(&records)?;
        fs::create_dir_all(&chip)?;
        fs::create_dir_all(&poison)?;
        fs::create_dir_all(&quarantine)?;
        Ok(ResultStore {
            records,
            chip,
            poison,
            quarantine,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            #[cfg(feature = "chaos")]
            chaos: None,
        })
    }

    /// Opens the store with every filesystem operation routed through
    /// a seeded fault injector (`chaos` feature only — test builds).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directories cannot be
    /// created.
    #[cfg(feature = "chaos")]
    pub fn open_with_chaos(root: &Path, cfg: crate::chaos::ChaosConfig) -> io::Result<ResultStore> {
        let mut store = ResultStore::open(root)?;
        store.chaos = Some(crate::chaos::FaultFs::new(cfg));
        Ok(store)
    }

    /// What the fault injector did so far (`None` if this store was
    /// opened without chaos).
    #[cfg(feature = "chaos")]
    pub fn chaos_counters(&self) -> Option<crate::chaos::ChaosCounters> {
        self.chaos.as_ref().map(crate::chaos::FaultFs::counters)
    }

    // ---- the I/O seam ------------------------------------------------
    // Every filesystem touch below goes through these four helpers, so
    // the chaos feature injects faults at exactly the syscalls the
    // durability argument is about. Without the feature they compile
    // to the plain `std::fs` calls.

    fn io_read(&self, path: &Path) -> io::Result<String> {
        #[cfg(feature = "chaos")]
        if let Some(c) = &self.chaos {
            return c.read_to_string(path);
        }
        fs::read_to_string(path)
    }

    fn io_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        #[cfg(feature = "chaos")]
        if let Some(c) = &self.chaos {
            return c.write(path, bytes);
        }
        fs::write(path, bytes)
    }

    fn io_rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        #[cfg(feature = "chaos")]
        if let Some(c) = &self.chaos {
            return c.rename(from, to);
        }
        fs::rename(from, to)
    }

    fn io_remove(&self, path: &Path) -> io::Result<()> {
        #[cfg(feature = "chaos")]
        if let Some(c) = &self.chaos {
            return c.remove_file(path);
        }
        fs::remove_file(path)
    }

    /// The directory holding record files.
    pub fn records_dir(&self) -> &Path {
        &self.records
    }

    fn record_path(&self, key: PointKey) -> PathBuf {
        self.records.join(format!("{}.json", key.hex()))
    }

    fn chip_path(&self, key: PointKey) -> PathBuf {
        self.chip.join(format!("{}.json", key.hex()))
    }

    fn poison_path(&self, key: PointKey) -> PathBuf {
        self.poison.join(format!("{}.json", key.hex()))
    }

    fn tmp_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!(".tmp-{}-{}", std::process::id(), TMP_SEQ.fetch_add(1, Ordering::Relaxed)))
    }

    /// Writes `bytes` into `dir/name` via the atomic temp-file +
    /// rename protocol, never leaving the temp file behind on a failed
    /// publish.
    fn publish(&self, dir: &Path, name: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.tmp_path(dir);
        self.io_write(&tmp, bytes)?;
        let published = self.io_rename(&tmp, name);
        if published.is_err() {
            let _ = self.io_remove(&tmp);
        }
        published
    }

    /// Loads and fully validates the record for `key`. `None` is a
    /// miss — absent, stale, or quarantined-just-now (see the module
    /// docs for the policy). Never panics on store contents.
    pub fn load(&self, key: PointKey) -> Option<SimStats> {
        let path = self.record_path(key);
        let text = match self.io_read(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                // Unreadable is indistinguishable from corrupt.
                self.quarantine_record(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match validate_record(&text, Some(key)) {
            Ok(stats) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stats)
            }
            Err(RecordFault::Stale) => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(RecordFault::Corrupt) => {
                self.quarantine_record(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a record file exists for `key` (existence only — no
    /// validation; `campaign status` uses this as a cheap census and
    /// leaves full validation to `verify`).
    pub fn contains(&self, key: PointKey) -> bool {
        self.record_path(key).exists()
    }

    /// Persists `stats` for `key` via the atomic temp-file + rename
    /// protocol.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (callers treat a failed save
    /// as "result not cached", never as a failed computation).
    pub fn save(&self, key: PointKey, label: &str, stats: &SimStats) -> io::Result<()> {
        let payload = stats_to_json(stats);
        let checksum = payload_checksum(&payload);
        let record = Json::Obj(vec![
            ("schema".into(), Json::from(RESULTSTORE_SCHEMA)),
            ("key".into(), Json::from(key.hex())),
            ("salt".into(), Json::U64(CODE_SALT)),
            ("label".into(), Json::from(label)),
            ("checksum".into(), Json::from(checksum)),
            ("stats".into(), payload),
        ]);
        self.publish(&self.records, &self.record_path(key), record.to_pretty().as_bytes())?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Loads and fully validates the chip-level record for `key` —
    /// same policy as [`ResultStore::load`] (absent/stale = miss,
    /// corrupt = quarantine + miss), same session counters.
    pub fn load_chip(&self, key: PointKey) -> Option<ChipStats> {
        let path = self.chip_path(key);
        let text = match self.io_read(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.quarantine_record(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match validate_chip(&text, Some(key)) {
            Ok(stats) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stats)
            }
            Err(RecordFault::Stale) => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(RecordFault::Corrupt) => {
                self.quarantine_record(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a chip-level record file exists for `key` (existence
    /// only, like [`ResultStore::contains`]).
    pub fn contains_chip(&self, key: PointKey) -> bool {
        self.chip_path(key).exists()
    }

    /// Persists the chip-level counters for `key` under `chip/` via
    /// the same atomic temp-file + rename protocol as
    /// [`ResultStore::save`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (callers treat a failed save
    /// as "result not cached").
    pub fn save_chip(&self, key: PointKey, label: &str, stats: &ChipStats) -> io::Result<()> {
        let payload = chip_stats_to_json(stats);
        let checksum = payload_checksum(&payload);
        let record = Json::Obj(vec![
            ("schema".into(), Json::from(CHIPSTORE_SCHEMA)),
            ("key".into(), Json::from(key.hex())),
            ("salt".into(), Json::U64(CODE_SALT)),
            ("label".into(), Json::from(label)),
            ("checksum".into(), Json::from(checksum)),
            ("stats".into(), payload),
        ]);
        self.publish(&self.chip, &self.chip_path(key), record.to_pretty().as_bytes())?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Persists a poison record for `rec.key`: the point is declared
    /// unrunnable and re-runs will skip it (until `gc` clears the
    /// record). Same atomic publish protocol as [`ResultStore::save`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (callers degrade to an
    /// unpersisted in-memory failure — the campaign still finishes).
    pub fn poison(&self, rec: &PoisonRecord) -> io::Result<()> {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::from(CAMPAIGN_SCHEMA)),
            ("kind".into(), Json::from("poison")),
            ("key".into(), Json::from(rec.key.hex())),
            ("salt".into(), Json::U64(CODE_SALT)),
            ("label".into(), Json::from(rec.label.as_str())),
            ("error".into(), Json::from(rec.error.as_str())),
            ("attempts".into(), Json::U64(u64::from(rec.attempts))),
            ("deadline_trips".into(), Json::U64(u64::from(rec.deadline_trips))),
        ]);
        self.publish(&self.poison, &self.poison_path(rec.key), doc.to_pretty().as_bytes())
    }

    /// Loads and validates the poison record for `key`, if any.
    /// Corrupt poison records are quarantined (and the point becomes
    /// runnable again); stale-salt ones are ignored and left for `gc`
    /// — poison from an old code version must not mask a point the
    /// current code might compute fine.
    pub fn load_poison(&self, key: PointKey) -> Option<PoisonRecord> {
        let path = self.poison_path(key);
        let text = match self.io_read(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.quarantine_record(&path);
                return None;
            }
        };
        match validate_poison(&text, Some(key)) {
            Ok(rec) => Some(rec),
            Err(RecordFault::Stale) => None,
            Err(RecordFault::Corrupt) => {
                self.quarantine_record(&path);
                None
            }
        }
    }

    /// Whether `key` has a valid poison record (the campaign skips
    /// such points).
    pub fn is_poisoned(&self, key: PointKey) -> bool {
        self.load_poison(key).is_some()
    }

    /// Every valid poison record, in deterministic (key-name) order.
    ///
    /// # Errors
    ///
    /// Returns the underlying error only if the poison directory
    /// cannot be listed; unreadable or invalid records are skipped
    /// (and quarantined where the policy says so).
    pub fn poison_list(&self) -> io::Result<Vec<PoisonRecord>> {
        let mut out = Vec::new();
        for entry in sorted_entries(&self.poison)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                continue;
            }
            let Some(key) = name.strip_suffix(".json").and_then(PointKey::from_hex) else {
                continue;
            };
            if let Some(rec) = self.load_poison(key) {
                out.push(rec);
            }
        }
        Ok(out)
    }

    /// Number of files sitting in `quarantine/`. Stable across
    /// repeated `verify` passes: verify only *adds* to quarantine when
    /// it finds new corruption, so two consecutive passes over an
    /// unchanged store report the same backlog.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the quarantine directory cannot
    /// be listed.
    pub fn quarantine_backlog(&self) -> io::Result<u64> {
        Ok(sorted_entries(&self.quarantine)?.len() as u64)
    }

    /// Full-store validation sweep: every record is parsed and
    /// checked; corrupt ones are quarantined as a side effect (the
    /// maintenance counterpart of the per-load checks). Poison records
    /// get the same treatment and are counted separately.
    ///
    /// # Errors
    ///
    /// Returns the underlying error only if the store directories
    /// cannot be listed; per-record problems are counted, not raised.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut rep = VerifyReport::default();
        for entry in sorted_entries(&self.records)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                rep.tmp_files += 1;
                continue;
            }
            let key = name.strip_suffix(".json").and_then(PointKey::from_hex);
            let outcome =
                self.io_read(&entry.path()).map_err(|_| RecordFault::Corrupt).and_then(|text| {
                    match key {
                        Some(k) => validate_record(&text, Some(k)).map(|_| ()),
                        // A record file not even named by a key is corrupt
                        // by construction.
                        None => Err(RecordFault::Corrupt),
                    }
                });
            match outcome {
                Ok(()) => rep.ok += 1,
                Err(RecordFault::Stale) => {
                    self.stale.fetch_add(1, Ordering::Relaxed);
                    rep.stale += 1;
                }
                Err(RecordFault::Corrupt) => {
                    self.quarantine_record(&entry.path());
                    rep.quarantined += 1;
                }
            }
        }
        for entry in sorted_entries(&self.chip)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                rep.tmp_files += 1;
                continue;
            }
            let key = name.strip_suffix(".json").and_then(PointKey::from_hex);
            let outcome =
                self.io_read(&entry.path()).map_err(|_| RecordFault::Corrupt).and_then(|text| {
                    match key {
                        Some(k) => validate_chip(&text, Some(k)).map(|_| ()),
                        None => Err(RecordFault::Corrupt),
                    }
                });
            match outcome {
                Ok(()) => rep.ok += 1,
                Err(RecordFault::Stale) => {
                    self.stale.fetch_add(1, Ordering::Relaxed);
                    rep.stale += 1;
                }
                Err(RecordFault::Corrupt) => {
                    self.quarantine_record(&entry.path());
                    rep.quarantined += 1;
                }
            }
        }
        for entry in sorted_entries(&self.poison)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                rep.tmp_files += 1;
                continue;
            }
            let key = name.strip_suffix(".json").and_then(PointKey::from_hex);
            let outcome =
                self.io_read(&entry.path()).map_err(|_| RecordFault::Corrupt).and_then(|text| {
                    match key {
                        Some(k) => validate_poison(&text, Some(k)).map(|_| ()),
                        None => Err(RecordFault::Corrupt),
                    }
                });
            match outcome {
                Ok(()) => rep.poisoned += 1,
                Err(RecordFault::Stale) => {
                    self.stale.fetch_add(1, Ordering::Relaxed);
                    rep.stale += 1;
                }
                Err(RecordFault::Corrupt) => {
                    self.quarantine_record(&entry.path());
                    rep.quarantined += 1;
                }
            }
        }
        rep.quarantine_backlog = self.quarantine_backlog()?;
        Ok(rep)
    }

    /// Reclaims everything that is not a valid current record —
    /// stale-salt records, corrupt records, orphaned temp files past
    /// the [`TMP_GC_GRACE`] age gate, the quarantine backlog — **and**
    /// all poison records (running `gc` is the deliberate way to make
    /// poisoned points runnable again).
    ///
    /// # Errors
    ///
    /// Returns the underlying error only if the store directories
    /// cannot be listed.
    pub fn gc(&self) -> io::Result<GcReport> {
        self.gc_with_tmp_age(TMP_GC_GRACE)
    }

    /// [`ResultStore::gc`] with an explicit temp-file age gate: temp
    /// files younger than `min_tmp_age` are kept (a live writer may be
    /// about to publish them). Pass [`Duration::ZERO`] when the store
    /// is known quiescent, e.g. when recovering right after a killed
    /// campaign.
    ///
    /// # Errors
    ///
    /// Returns the underlying error only if the store directories
    /// cannot be listed.
    pub fn gc_with_tmp_age(&self, min_tmp_age: Duration) -> io::Result<GcReport> {
        let mut rep = GcReport::default();
        for entry in sorted_entries(&self.records)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                if tmp_older_than(&entry, min_tmp_age) {
                    if self.io_remove(&entry.path()).is_ok() {
                        rep.tmp_removed += 1;
                    }
                } else {
                    rep.tmp_kept += 1;
                }
                continue;
            }
            let key = name.strip_suffix(".json").and_then(PointKey::from_hex);
            let outcome =
                self.io_read(&entry.path()).map_err(|_| RecordFault::Corrupt).and_then(|text| {
                    match key {
                        Some(k) => validate_record(&text, Some(k)).map(|_| ()),
                        None => Err(RecordFault::Corrupt),
                    }
                });
            match outcome {
                Ok(()) => rep.kept += 1,
                Err(RecordFault::Stale) => {
                    if self.io_remove(&entry.path()).is_ok() {
                        rep.stale_removed += 1;
                    }
                }
                Err(RecordFault::Corrupt) => {
                    if self.io_remove(&entry.path()).is_ok() {
                        rep.corrupt_removed += 1;
                    }
                }
            }
        }
        for entry in sorted_entries(&self.chip)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                if tmp_older_than(&entry, min_tmp_age) {
                    if self.io_remove(&entry.path()).is_ok() {
                        rep.tmp_removed += 1;
                    }
                } else {
                    rep.tmp_kept += 1;
                }
                continue;
            }
            let key = name.strip_suffix(".json").and_then(PointKey::from_hex);
            let outcome =
                self.io_read(&entry.path()).map_err(|_| RecordFault::Corrupt).and_then(|text| {
                    match key {
                        Some(k) => validate_chip(&text, Some(k)).map(|_| ()),
                        None => Err(RecordFault::Corrupt),
                    }
                });
            match outcome {
                Ok(()) => rep.kept += 1,
                Err(RecordFault::Stale) => {
                    if self.io_remove(&entry.path()).is_ok() {
                        rep.stale_removed += 1;
                    }
                }
                Err(RecordFault::Corrupt) => {
                    if self.io_remove(&entry.path()).is_ok() {
                        rep.corrupt_removed += 1;
                    }
                }
            }
        }
        for entry in sorted_entries(&self.poison)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") && !tmp_older_than(&entry, min_tmp_age) {
                rep.tmp_kept += 1;
                continue;
            }
            if self.io_remove(&entry.path()).is_ok() {
                rep.poison_removed += 1;
            }
        }
        for entry in sorted_entries(&self.quarantine)? {
            if self.io_remove(&entry.path()).is_ok() {
                rep.quarantine_removed += 1;
            }
        }
        Ok(rep)
    }

    /// Number of record files currently published (cheap census; does
    /// not validate).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the records directory cannot be
    /// listed.
    pub fn len(&self) -> io::Result<usize> {
        Ok(sorted_entries(&self.records)?
            .iter()
            .filter(|e| !e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count())
    }

    /// Whether the store holds no records.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the records directory cannot be
    /// listed.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Snapshot of the session counters (hits/misses/… since `open`).
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Moves a failed record into `quarantine/` (unique suffix so
    /// repeated corruption never collides). Best-effort: on rename
    /// failure the record is deleted instead, and if even that fails
    /// the store degrades to treating the key as a permanent miss.
    fn quarantine_record(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        let nanos = std::time::UNIX_EPOCH
            .elapsed()
            .map_or(0, |d| d.as_nanos() as u64)
            .wrapping_add(TMP_SEQ.fetch_add(1, Ordering::Relaxed));
        let dest = self.quarantine.join(format!("{name}.{nanos:016x}"));
        if self.io_rename(path, &dest).is_err() {
            let _ = self.io_remove(path);
        }
    }
}

/// Whether a temp file is old enough to reclaim. Unknown age (no
/// metadata, mtime in the future) counts as *young* — when in doubt,
/// keep the file; the next pass gets it.
fn tmp_older_than(entry: &fs::DirEntry, min_age: Duration) -> bool {
    if min_age.is_zero() {
        return true;
    }
    entry
        .metadata()
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .is_some_and(|age| age >= min_age)
}

/// Checksum of the serialized stats payload: FNV-1a over the
/// *compact* rendering (whitespace-independent, so the pretty record
/// layout may change without invalidating checksums).
fn payload_checksum(payload: &Json) -> String {
    let mut h = Fnv64::new();
    h.write_bytes(payload.to_string().as_bytes());
    format!("{:016x}", h.finish())
}

/// Full record validation. `expect_key` is the key implied by the
/// filename; `None` skips the filename cross-check (not used today,
/// but keeps the signature honest about what is being checked).
fn validate_record(text: &str, expect_key: Option<PointKey>) -> Result<SimStats, RecordFault> {
    let doc = Json::parse(text).map_err(|_| RecordFault::Corrupt)?;
    if doc.get("schema").and_then(Json::as_str) != Some(RESULTSTORE_SCHEMA) {
        return Err(RecordFault::Corrupt);
    }
    let embedded = doc
        .get("key")
        .and_then(Json::as_str)
        .and_then(PointKey::from_hex)
        .ok_or(RecordFault::Corrupt)?;
    if let Some(k) = expect_key {
        if embedded != k {
            return Err(RecordFault::Corrupt);
        }
    }
    let payload = doc.get("stats").ok_or(RecordFault::Corrupt)?;
    let checksum = doc.get("checksum").and_then(Json::as_str).ok_or(RecordFault::Corrupt)?;
    if checksum != payload_checksum(payload) {
        return Err(RecordFault::Corrupt);
    }
    let stats = stats_from_json(payload).map_err(|_| RecordFault::Corrupt)?;
    // Salt last: a record must be *well-formed* to be merely stale —
    // a garbled record with a garbled salt is corrupt, not stale.
    match doc.get("salt").and_then(Json::as_u64) {
        Some(CODE_SALT) => Ok(stats),
        Some(_) => Err(RecordFault::Stale),
        None => Err(RecordFault::Corrupt),
    }
}

/// Chip-record validation, mirroring [`validate_record`]'s policy
/// (including salt-last) under the [`CHIPSTORE_SCHEMA`] tag.
fn validate_chip(text: &str, expect_key: Option<PointKey>) -> Result<ChipStats, RecordFault> {
    let doc = Json::parse(text).map_err(|_| RecordFault::Corrupt)?;
    if doc.get("schema").and_then(Json::as_str) != Some(CHIPSTORE_SCHEMA) {
        return Err(RecordFault::Corrupt);
    }
    let embedded = doc
        .get("key")
        .and_then(Json::as_str)
        .and_then(PointKey::from_hex)
        .ok_or(RecordFault::Corrupt)?;
    if let Some(k) = expect_key {
        if embedded != k {
            return Err(RecordFault::Corrupt);
        }
    }
    let payload = doc.get("stats").ok_or(RecordFault::Corrupt)?;
    let checksum = doc.get("checksum").and_then(Json::as_str).ok_or(RecordFault::Corrupt)?;
    if checksum != payload_checksum(payload) {
        return Err(RecordFault::Corrupt);
    }
    let stats = chip_stats_from_json(payload).map_err(|_| RecordFault::Corrupt)?;
    // Salt last, as in `validate_record`.
    match doc.get("salt").and_then(Json::as_u64) {
        Some(CODE_SALT) => Ok(stats),
        Some(_) => Err(RecordFault::Stale),
        None => Err(RecordFault::Corrupt),
    }
}

/// Poison-record validation, mirroring [`validate_record`]'s policy
/// (including salt-last).
fn validate_poison(text: &str, expect_key: Option<PointKey>) -> Result<PoisonRecord, RecordFault> {
    let doc = Json::parse(text).map_err(|_| RecordFault::Corrupt)?;
    if doc.get("schema").and_then(Json::as_str) != Some(CAMPAIGN_SCHEMA)
        || doc.get("kind").and_then(Json::as_str) != Some("poison")
    {
        return Err(RecordFault::Corrupt);
    }
    let key = doc
        .get("key")
        .and_then(Json::as_str)
        .and_then(PointKey::from_hex)
        .ok_or(RecordFault::Corrupt)?;
    if let Some(k) = expect_key {
        if key != k {
            return Err(RecordFault::Corrupt);
        }
    }
    let label = doc.get("label").and_then(Json::as_str).ok_or(RecordFault::Corrupt)?;
    let error = doc.get("error").and_then(Json::as_str).ok_or(RecordFault::Corrupt)?;
    let attempts = doc
        .get("attempts")
        .and_then(Json::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(RecordFault::Corrupt)?;
    let deadline_trips = doc
        .get("deadline_trips")
        .and_then(Json::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(RecordFault::Corrupt)?;
    let rec =
        PoisonRecord { key, label: label.into(), error: error.into(), attempts, deadline_trips };
    match doc.get("salt").and_then(Json::as_u64) {
        Some(CODE_SALT) => Ok(rec),
        Some(_) => Err(RecordFault::Stale),
        None => Err(RecordFault::Corrupt),
    }
}

/// Directory entries in sorted name order (deterministic maintenance
/// reports regardless of filesystem enumeration order).
fn sorted_entries(dir: &Path) -> io::Result<Vec<fs::DirEntry>> {
    let mut v: Vec<fs::DirEntry> = fs::read_dir(dir)?.filter_map(Result::ok).collect();
    v.sort_by_key(fs::DirEntry::file_name);
    Ok(v)
}

/// Every published record of the store rooted at `root` as
/// `(file name, bytes)`, sorted by name — the byte-identity currency
/// of the convergence assertions (chaos recovery, sharded-serve
/// determinism): two stores are equivalent iff their snapshots are
/// equal. In-flight `.tmp-*` files are excluded (they are invisible to
/// readers by the atomic-publish contract).
///
/// # Errors
///
/// Propagates filesystem errors from enumerating or reading `records/`.
pub fn snapshot_records(root: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
    let mut v = Vec::new();
    for e in sorted_entries(&root.join("records"))? {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.starts_with(".tmp-") {
            continue;
        }
        v.push((name, fs::read(e.path())?));
    }
    // Chip-level records participate in the identity with a "chip/"
    // prefix (never colliding with `records/` names). A store written
    // by a pre-chip code version simply has no such directory.
    match sorted_entries(&root.join("chip")) {
        Ok(entries) => {
            for e in entries {
                let name = e.file_name().to_string_lossy().into_owned();
                if name.starts_with(".tmp-") {
                    continue;
                }
                v.push((format!("chip/{name}"), fs::read(e.path())?));
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(v)
}
