//! The long-running `campaign serve` loop: manifests in, outcome
//! records out, shard-partitioned across processes (DESIGN.md §15).
//!
//! A *manifest* is one JSON object (one line on stdin, or one file in
//! a spool directory) naming a point set by figure id and budget; the
//! serve loop enumerates it through a caller-supplied closure (the
//! harness wires its figure enumeration in — this crate stays
//! figure-agnostic), filters the points down to the shard this process
//! owns, and drives them through [`run_campaign_on`] on one persistent
//! [`WorkerPool`] with deadlines, retries and poisoning exactly as a
//! one-shot `campaign run`. Each manifest streams one
//! [`CAMPAIGN_SCHEMA`] outcome line to the output writer, flushed
//! immediately, so a supervisor can tail progress.
//!
//! Sharding: [`shard_of`] deterministically partitions point
//! *fingerprints* ([`PointKey`]), so N serve processes pointed at the
//! same store with `--shards N --shard 0..N` split one campaign
//! without coordination — the store's atomic temp+rename publish
//! already makes concurrent writers safe, and identical keys map to
//! identical shards in every process. The union of the shards is
//! exactly the full point set; re-running any subset is idempotent
//! (cache hits).

use std::io::{self, BufRead, Write};
use std::path::Path;

use vr_obs::{Json, CAMPAIGN_SCHEMA, MANIFEST_SCHEMA};

use crate::chip::ChipPoint;
use crate::engine::SweepPoint;
use crate::engine::{run_campaign_on, CampaignOutcome, CancelToken, EngineConfig, Executor};
use crate::fingerprint::PointKey;
use crate::store::ResultStore;
use crate::CampaignPoint;
use vr_pool::WorkerPool;

/// Deterministic shard of a point fingerprint in `0..shards`. Folds
/// the high half into the low half before reducing so the partition
/// stays balanced even if one half of the fingerprint were biased.
pub fn shard_of(key: PointKey, shards: u32) -> u32 {
    let mixed = key.0 ^ (key.0 >> 32);
    (mixed % u64::from(shards.max(1))) as u32
}

/// Which shard of a sharded campaign this process owns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardSpec {
    /// Total number of shards (≥ 1).
    pub shards: u32,
    /// This process's shard index (`< shards`).
    pub index: u32,
}

impl Default for ShardSpec {
    fn default() -> ShardSpec {
        ShardSpec::SOLO
    }
}

impl ShardSpec {
    /// The unsharded spec: one process owns every point.
    pub const SOLO: ShardSpec = ShardSpec { shards: 1, index: 0 };

    /// Validates `index < shards` and `shards ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for CLI diagnostics when the pair is
    /// not a valid partition member.
    pub fn new(shards: u32, index: u32) -> Result<ShardSpec, String> {
        if shards == 0 {
            return Err("--shards must be >= 1".into());
        }
        if index >= shards {
            return Err(format!("--shard {index} out of range for --shards {shards}"));
        }
        Ok(ShardSpec { shards, index })
    }

    /// Whether this process owns `key`.
    pub fn owns(self, key: PointKey) -> bool {
        shard_of(key, self.shards) == self.index
    }
}

/// One parsed point-set manifest ([`MANIFEST_SCHEMA`]).
///
/// The fields are deliberately plain strings/ints: this crate cannot
/// name the harness's figure or preset types (the dependency points
/// the other way), so the enumerate closure owns their interpretation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Manifest {
    /// Identifier echoed into the outcome record (defaults to
    /// `"{figure}@{insts}"`).
    pub id: String,
    /// Figure id whose points to run (`"all"` for the union).
    pub figure: String,
    /// Instruction budget per point.
    pub insts: u64,
    /// Workload scale: `"quick"` or `"paper"` (default `"quick"`).
    pub scale: String,
    /// Graph-preset abbreviations for the full-set figures (empty
    /// means the enumerate closure's default).
    pub presets: Vec<String>,
    /// Threads for stepping each multi-core chip point this manifest
    /// enumerates ([`EngineConfig::chip_threads`]); `None` keeps the
    /// serve process's configured value. An execution knob only: chip
    /// stats are bit-identical at any value.
    pub chip_threads: Option<usize>,
}

impl Manifest {
    /// Parses one manifest line/file body.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the JSON is malformed, the schema tag
    /// is missing or unknown, or a required field is absent/mistyped.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = Json::parse(text).map_err(|e| format!("malformed manifest JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(MANIFEST_SCHEMA) => {}
            Some(other) => return Err(format!("unknown manifest schema {other:?}")),
            None => return Err(format!("manifest missing \"schema\" (want {MANIFEST_SCHEMA:?})")),
        }
        let figure = doc
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("manifest missing string field \"figure\"")?
            .to_string();
        let insts = doc
            .get("insts")
            .and_then(Json::as_u64)
            .ok_or("manifest missing integer field \"insts\"")?;
        let scale = match doc.get("scale") {
            None => "quick".to_string(),
            Some(v) => match v.as_str() {
                Some(s @ ("quick" | "paper")) => s.to_string(),
                _ => return Err(r#"manifest "scale" must be "quick" or "paper""#.into()),
            },
        };
        let presets = match doc.get("presets") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or(r#"manifest "presets" must be an array of strings"#)?
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| r#"manifest "presets" must be an array of strings"#.into())
                })
                .collect::<Result<Vec<String>, String>>()?,
        };
        let id = match doc.get("id") {
            None => format!("{figure}@{insts}"),
            Some(v) => v.as_str().ok_or(r#"manifest "id" must be a string"#)?.to_string(),
        };
        let chip_threads = match doc.get("chip_threads") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(n) if n >= 1 => Some(n as usize),
                _ => return Err(r#"manifest "chip_threads" must be a positive integer"#.into()),
            },
        };
        Ok(Manifest { id, figure, insts, scale, presets, chip_threads })
    }
}

/// Serve-loop configuration: the engine knobs plus this process's
/// shard assignment.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeConfig {
    /// Engine tuning (threads, retries, deadline) applied to every
    /// manifest's campaign.
    pub engine: EngineConfig,
    /// This process's shard of the point-fingerprint space.
    pub shard: ShardSpec,
}

/// Aggregate tallies across every manifest a serve loop processed.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ServeSummary {
    /// Manifests executed (parsed, enumerated and driven).
    pub manifests: u64,
    /// Inputs rejected (parse or enumeration failure); the loop
    /// reports and continues.
    pub rejected: u64,
    /// Points enumerated across manifests, before shard filtering.
    pub enumerated: u64,
    /// Points owned by this shard and submitted to the engine.
    pub owned: u64,
    /// Engine tallies summed over manifests.
    pub computed: u64,
    /// Points served from the store.
    pub cache_hits: u64,
    /// Points skipped because an earlier run poisoned them.
    pub skipped_poisoned: u64,
    /// Points poisoned across manifests (degradation, not failure —
    /// matching `campaign run`'s exit-code policy).
    pub poisoned: u64,
    /// Points that failed without a poison record across manifests.
    pub failed: u64,
    /// Whether the loop stopped early on cancellation.
    pub cancelled: bool,
}

impl ServeSummary {
    fn absorb(&mut self, enumerated: usize, out: &CampaignOutcome) {
        self.manifests += 1;
        self.enumerated += enumerated as u64;
        self.owned += out.submitted;
        self.computed += out.computed;
        self.cache_hits += out.cache_hits;
        self.skipped_poisoned += out.skipped_poisoned;
        self.poisoned += out.poisoned.len() as u64;
        self.failed += out.failed.len() as u64;
        self.cancelled |= out.cancelled;
    }

    /// Machine-readable rendering under [`CAMPAIGN_SCHEMA`].
    pub fn to_json(&self) -> Json {
        // Exhaustive destructuring: a new field must decide how it
        // exports before this compiles.
        let ServeSummary {
            manifests,
            rejected,
            enumerated,
            owned,
            computed,
            cache_hits,
            skipped_poisoned,
            poisoned,
            failed,
            cancelled,
        } = self;
        Json::Obj(vec![
            ("schema".into(), Json::from(CAMPAIGN_SCHEMA)),
            ("kind".into(), Json::from("serve-summary")),
            ("manifests".into(), Json::U64(*manifests)),
            ("rejected".into(), Json::U64(*rejected)),
            ("enumerated".into(), Json::U64(*enumerated)),
            ("owned".into(), Json::U64(*owned)),
            ("computed".into(), Json::U64(*computed)),
            ("cache_hits".into(), Json::U64(*cache_hits)),
            ("skipped_poisoned".into(), Json::U64(*skipped_poisoned)),
            ("poisoned".into(), Json::U64(*poisoned)),
            ("failed".into(), Json::U64(*failed)),
            ("cancelled".into(), Json::Bool(*cancelled)),
        ])
    }
}

/// The point set one manifest enumerates to: either single-core
/// campaign points or multi-core chip points. One manifest is one
/// kind — the harness's chip figure enumerates `Chip`, everything else
/// `Scalar` — but a serve loop freely interleaves manifests of both.
#[derive(Clone, Debug)]
pub enum PointSet {
    /// Single-core sweep points.
    Scalar(Vec<CampaignPoint>),
    /// Multi-core chip points.
    Chip(Vec<ChipPoint>),
}

/// Maps a manifest to its campaign points. `Err` rejects the manifest
/// (reported on the output stream; the loop continues).
pub type Enumerate<'a> = &'a dyn Fn(&Manifest) -> Result<PointSet, String>;

/// The serve loop over a line-oriented reader (stdin in the CLI):
/// one manifest JSON per line, blank lines skipped, until EOF or
/// cancellation. Streams one outcome line per input to `out` (see
/// [`serve_one`]) and returns the aggregate summary.
///
/// # Errors
///
/// Propagates I/O errors from the input reader or output writer;
/// manifest-level problems are reported in-band and never abort the
/// loop.
pub fn serve_lines<E: Executor + Executor<ChipPoint>>(
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    store: &ResultStore,
    exec: &E,
    cfg: &ServeConfig,
    cancel: &CancelToken,
    enumerate: Enumerate<'_>,
) -> io::Result<ServeSummary> {
    let pool = serve_pool(&cfg.engine);
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        if cancel.is_cancelled() {
            summary.cancelled = true;
            break;
        }
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        serve_one(&pool, &line, out, store, exec, cfg, cancel, enumerate, &mut summary)?;
    }
    emit(out, &summary.to_json())?;
    Ok(summary)
}

/// The serve loop over a spool directory: drains every `*.json` file
/// in name order (renaming each to `*.done` once processed — rerunning
/// after a crash re-reads only what is left), looping until a pass
/// finds the spool empty or the campaign is cancelled. Files dropped
/// in while a pass runs are picked up by the next pass.
///
/// # Errors
///
/// Propagates I/O errors from spool enumeration, file reads, renames
/// or the output writer.
pub fn serve_spool<E: Executor + Executor<ChipPoint>>(
    spool: &Path,
    out: &mut dyn Write,
    store: &ResultStore,
    exec: &E,
    cfg: &ServeConfig,
    cancel: &CancelToken,
    enumerate: Enumerate<'_>,
) -> io::Result<ServeSummary> {
    let pool = serve_pool(&cfg.engine);
    let mut summary = ServeSummary::default();
    'drain: loop {
        let mut batch: Vec<std::path::PathBuf> = std::fs::read_dir(spool)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        if batch.is_empty() {
            break;
        }
        batch.sort();
        for path in batch {
            if cancel.is_cancelled() {
                summary.cancelled = true;
                break 'drain;
            }
            let text = std::fs::read_to_string(&path)?;
            serve_one(&pool, &text, out, store, exec, cfg, cancel, enumerate, &mut summary)?;
            std::fs::rename(&path, path.with_extension("done"))?;
        }
    }
    emit(out, &summary.to_json())?;
    Ok(summary)
}

/// One persistent pool sized for the engine config (the whole reason
/// serve exists: thread spawn cost is paid once, not per manifest).
fn serve_pool(cfg: &EngineConfig) -> WorkerPool {
    WorkerPool::new(cfg.resolved_threads(usize::MAX))
}

/// Parses, enumerates, shard-filters and runs one manifest, streaming
/// exactly one outcome line: `kind: "serve"` with the embedded engine
/// outcome on success, `kind: "serve-reject"` with the diagnostic on a
/// parse/enumeration failure.
#[allow(clippy::too_many_arguments)] // internal plumbing of the two loops above
fn serve_one<E: Executor + Executor<ChipPoint>>(
    pool: &WorkerPool,
    text: &str,
    out: &mut dyn Write,
    store: &ResultStore,
    exec: &E,
    cfg: &ServeConfig,
    cancel: &CancelToken,
    enumerate: Enumerate<'_>,
    summary: &mut ServeSummary,
) -> io::Result<()> {
    let run = Manifest::parse(text).and_then(|m| Ok((enumerate(&m)?, m)));
    match run {
        Err(error) => {
            summary.rejected += 1;
            emit(
                out,
                &Json::Obj(vec![
                    ("schema".into(), Json::from(CAMPAIGN_SCHEMA)),
                    ("kind".into(), Json::from("serve-reject")),
                    ("input".into(), Json::from(text.trim())),
                    ("error".into(), Json::from(error)),
                ]),
            )
        }
        Ok((points, manifest)) => {
            // A manifest may pin its own chip-stepping thread count;
            // otherwise the serve process's configuration applies.
            let mut cfg = *cfg;
            if let Some(ct) = manifest.chip_threads {
                cfg.engine.chip_threads = ct;
            }
            let cfg = &cfg;
            // Sharding, driving and outcome accounting are identical
            // for both point kinds — only the static type differs.
            let (enumerated, outcome) = match points {
                PointSet::Scalar(points) => drive(pool, points, store, exec, cfg, cancel),
                PointSet::Chip(points) => drive(pool, points, store, exec, cfg, cancel),
            };
            summary.absorb(enumerated, &outcome);
            emit(
                out,
                &Json::Obj(vec![
                    ("schema".into(), Json::from(CAMPAIGN_SCHEMA)),
                    ("kind".into(), Json::from("serve")),
                    ("manifest".into(), Json::from(manifest.id)),
                    ("shard".into(), Json::U64(u64::from(cfg.shard.index))),
                    ("shards".into(), Json::U64(u64::from(cfg.shard.shards))),
                    ("enumerated".into(), Json::from(enumerated)),
                    ("owned".into(), Json::from(outcome.total)),
                    ("outcome".into(), outcome.to_json()),
                ]),
            )
        }
    }
}

/// Shard-filters one manifest's points and drives them on the
/// persistent pool, returning the pre-filter count and the engine
/// outcome.
fn drive<P: SweepPoint, E: Executor<P>>(
    pool: &WorkerPool,
    points: Vec<P>,
    store: &ResultStore,
    exec: &E,
    cfg: &ServeConfig,
    cancel: &CancelToken,
) -> (usize, CampaignOutcome) {
    let enumerated = points.len();
    let owned: Vec<P> = points.into_iter().filter(|p| cfg.shard.owns(p.key())).collect();
    let outcome = run_campaign_on(Some(pool), &owned, store, exec, &cfg.engine, cancel, None);
    (enumerated, outcome)
}

/// One flushed JSON line (the streaming contract: a tailing supervisor
/// sees every outcome as soon as it exists).
fn emit(out: &mut dyn Write, doc: &Json) -> io::Result<()> {
    writeln!(out, "{doc}")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CampaignPoint, ExecCtx};
    use std::sync::Arc;
    use vr_core::{CoreConfig, RunaheadConfig, SimError, SimStats};
    use vr_mem::MemConfig;
    use vr_workloads::{hpcdb, Scale};

    fn points(n: u64, insts_base: u64) -> Vec<CampaignPoint> {
        let w = Arc::new(hpcdb::kangaroo(Scale::Test));
        (0..n)
            .map(|i| CampaignPoint {
                label: format!("serve/p{i}"),
                workload: Arc::clone(&w),
                core: CoreConfig::table1(),
                mem: MemConfig::tiny_for_tests(),
                ra: RunaheadConfig::none(),
                max_insts: insts_base + i,
            })
            .collect()
    }

    struct FakeExec;
    impl Executor for FakeExec {
        fn execute(&self, p: &CampaignPoint, _ctx: &ExecCtx) -> Result<SimStats, SimError> {
            Ok(SimStats {
                cycles: p.max_insts * 3,
                instructions: p.max_insts,
                ..SimStats::default()
            })
        }
    }
    impl Executor<ChipPoint> for FakeExec {
        fn execute(&self, p: &ChipPoint, _ctx: &ExecCtx) -> Result<vr_chip::ChipRun, SimError> {
            Ok(vr_chip::ChipRun {
                per_core: vec![SimStats::default(); p.slots.len()],
                chip: vr_chip::ChipStats { cycles: p.max_insts, ..Default::default() },
            })
        }
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!(
            "vr-serve-test-{tag}-{}-{}",
            std::process::id(),
            crate::test_nonce()
        ));
        (dir.clone(), ResultStore::open(&dir).expect("open store"))
    }

    fn manifest_line(insts: u64) -> String {
        format!(r#"{{"schema":"{MANIFEST_SCHEMA}","figure":"all","insts":{insts}}}"#)
    }

    #[test]
    fn shard_partition_is_total_and_deterministic() {
        let keys: Vec<PointKey> =
            (0..500u64).map(|i| PointKey(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))).collect();
        for shards in [1u32, 2, 3, 7] {
            let specs: Vec<ShardSpec> =
                (0..shards).map(|i| ShardSpec::new(shards, i).unwrap()).collect();
            for &k in &keys {
                let owners = specs.iter().filter(|s| s.owns(k)).count();
                assert_eq!(owners, 1, "every key has exactly one owner (shards={shards})");
                assert_eq!(shard_of(k, shards), shard_of(k, shards), "deterministic");
            }
        }
        // The partition is reasonably balanced (no shard starves).
        let per: Vec<usize> =
            (0..4u32).map(|i| keys.iter().filter(|k| shard_of(**k, 4) == i).count()).collect();
        assert!(per.iter().all(|&n| n > keys.len() / 10), "balance: {per:?}");
    }

    #[test]
    fn shard_spec_validates() {
        assert!(ShardSpec::new(0, 0).is_err());
        assert!(ShardSpec::new(2, 2).is_err());
        assert_eq!(ShardSpec::new(2, 1).unwrap(), ShardSpec { shards: 2, index: 1 });
        assert_eq!(ShardSpec::default(), ShardSpec::SOLO);
        assert!(ShardSpec::SOLO.owns(PointKey(u64::MAX)));
    }

    #[test]
    fn manifest_parses_with_defaults_and_rejects_garbage() {
        let m = Manifest::parse(&manifest_line(5000)).unwrap();
        assert_eq!(
            m,
            Manifest {
                id: "all@5000".into(),
                figure: "all".into(),
                insts: 5000,
                scale: "quick".into(),
                presets: vec![],
                chip_threads: None,
            }
        );
        let full = format!(
            r#"{{"schema":"{MANIFEST_SCHEMA}","id":"x","figure":"fig-mshr","insts":7,"scale":"paper","presets":["KR","UR"]}}"#
        );
        let m = Manifest::parse(&full).unwrap();
        assert_eq!((m.id.as_str(), m.scale.as_str()), ("x", "paper"));
        assert_eq!(m.presets, ["KR", "UR"]);

        for bad in [
            "not json",
            r#"{"figure":"all","insts":1}"#,
            r#"{"schema":"vr-campaign-manifest-v99","figure":"all","insts":1}"#,
            &format!(r#"{{"schema":"{MANIFEST_SCHEMA}","insts":1}}"#),
            &format!(r#"{{"schema":"{MANIFEST_SCHEMA}","figure":"all"}}"#),
            &format!(r#"{{"schema":"{MANIFEST_SCHEMA}","figure":"all","insts":1,"scale":"huge"}}"#),
            &format!(r#"{{"schema":"{MANIFEST_SCHEMA}","figure":"all","insts":1,"presets":[3]}}"#),
        ] {
            assert!(Manifest::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn serve_lines_streams_outcomes_and_sums_the_summary() {
        let (dir, store) = tmp_store("lines");
        let enumerate = |m: &Manifest| Ok(PointSet::Scalar(points(6, m.insts)));
        let input = format!("{}\n\n{}\nnot-a-manifest\n", manifest_line(100), manifest_line(200));
        let mut out = Vec::new();
        let cfg = ServeConfig {
            engine: EngineConfig { threads: 2, ..EngineConfig::default() },
            shard: ShardSpec::SOLO,
        };
        let summary = serve_lines(
            &mut input.as_bytes(),
            &mut out,
            &store,
            &FakeExec,
            &cfg,
            &CancelToken::new(),
            &enumerate,
        )
        .unwrap();
        assert_eq!(summary.manifests, 2);
        assert_eq!(summary.rejected, 1);
        assert_eq!(summary.enumerated, 12);
        assert_eq!(summary.owned, 12);
        assert_eq!(summary.computed, 12);
        assert!(!summary.cancelled);

        let lines: Vec<Json> =
            String::from_utf8(out).unwrap().lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 4, "2 outcomes + 1 reject + summary");
        assert_eq!(lines[0].get("kind").and_then(Json::as_str), Some("serve"));
        assert_eq!(lines[0].get("manifest").and_then(Json::as_str), Some("all@100"));
        assert_eq!(
            lines[0].get("outcome").and_then(|o| o.get("computed")).and_then(Json::as_u64),
            Some(6)
        );
        assert_eq!(lines[2].get("kind").and_then(Json::as_str), Some("serve-reject"));
        assert_eq!(lines[3].get("kind").and_then(Json::as_str), Some("serve-summary"));
        assert_eq!(lines[3].get("computed").and_then(Json::as_u64), Some(12));
        assert_eq!(Json::parse(&summary.to_json().to_string()).unwrap(), lines[3]);

        // Serving the same lines again is pure cache hits.
        let mut out2 = Vec::new();
        let again = serve_lines(
            &mut input.as_bytes(),
            &mut out2,
            &store,
            &FakeExec,
            &cfg,
            &CancelToken::new(),
            &enumerate,
        )
        .unwrap();
        assert_eq!((again.computed, again.cache_hits), (0, 12));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn two_shards_cover_the_set_exactly_once_and_match_solo() {
        let (solo_dir, solo_store) = tmp_store("solo");
        let (shard_dir, shard_store) = tmp_store("sharded");
        let enumerate = |m: &Manifest| Ok(PointSet::Scalar(points(20, m.insts)));
        let input = manifest_line(300);
        let engine = EngineConfig { threads: 2, ..EngineConfig::default() };

        let mut sink = Vec::new();
        let solo = serve_lines(
            &mut input.as_bytes(),
            &mut sink,
            &solo_store,
            &FakeExec,
            &ServeConfig { engine, shard: ShardSpec::SOLO },
            &CancelToken::new(),
            &enumerate,
        )
        .unwrap();
        assert_eq!(solo.computed, 20);

        let mut total_owned = 0;
        for index in 0..2 {
            let cfg = ServeConfig { engine, shard: ShardSpec::new(2, index).unwrap() };
            let s = serve_lines(
                &mut input.as_bytes(),
                &mut Vec::new(),
                &shard_store,
                &FakeExec,
                &cfg,
                &CancelToken::new(),
                &enumerate,
            )
            .unwrap();
            assert_eq!(s.enumerated, 20, "shards see the full manifest");
            assert_eq!(s.owned, s.computed, "each shard computes exactly what it owns");
            total_owned += s.owned;
        }
        assert_eq!(total_owned, 20, "shards partition the set");
        // Byte-identical stores: the sharded pair converged on exactly
        // the solo run's records.
        assert_eq!(
            crate::store::snapshot_records(&shard_dir).unwrap(),
            crate::store::snapshot_records(&solo_dir).unwrap()
        );
        std::fs::remove_dir_all(&solo_dir).ok();
        std::fs::remove_dir_all(&shard_dir).ok();
    }

    #[test]
    fn spool_mode_drains_renames_and_resumes() {
        let (dir, store) = tmp_store("spool");
        let spool = dir.join("spool");
        std::fs::create_dir_all(&spool).unwrap();
        std::fs::write(spool.join("a.json"), manifest_line(400)).unwrap();
        std::fs::write(spool.join("b.json"), manifest_line(500)).unwrap();
        std::fs::write(spool.join("ignored.txt"), "not a manifest").unwrap();
        let enumerate = |m: &Manifest| Ok(PointSet::Scalar(points(3, m.insts)));
        let cfg = ServeConfig::default();
        let mut out = Vec::new();
        let summary =
            serve_spool(&spool, &mut out, &store, &FakeExec, &cfg, &CancelToken::new(), &enumerate)
                .unwrap();
        assert_eq!((summary.manifests, summary.computed), (2, 6));
        assert!(spool.join("a.done").exists() && spool.join("b.done").exists());
        assert!(spool.join("ignored.txt").exists(), "non-manifest files untouched");

        // A second drain finds nothing to do.
        let again = serve_spool(
            &spool,
            &mut Vec::new(),
            &store,
            &FakeExec,
            &cfg,
            &CancelToken::new(),
            &enumerate,
        )
        .unwrap();
        assert_eq!(again.manifests, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancellation_stops_the_loop_between_manifests() {
        let (dir, store) = tmp_store("cancel");
        let cancel = CancelToken::new();
        cancel.cancel();
        let enumerate = |m: &Manifest| Ok(PointSet::Scalar(points(3, m.insts)));
        let input = format!("{}\n{}\n", manifest_line(600), manifest_line(700));
        let summary = serve_lines(
            &mut input.as_bytes(),
            &mut Vec::new(),
            &store,
            &FakeExec,
            &ServeConfig::default(),
            &cancel,
            &enumerate,
        )
        .unwrap();
        assert!(summary.cancelled);
        assert_eq!(summary.computed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
