//! The resumable sweep-campaign engine.
//!
//! A *campaign* is a set of [`CampaignPoint`]s (deduplicated by
//! fingerprint) driven to completion against a [`ResultStore`]:
//!
//! * points whose result is already stored are **cache hits** — no
//!   simulation runs;
//! * missing points are computed on a shared-injector worker pool
//!   (every worker pops from one queue, so load balances regardless of
//!   how wildly per-point runtimes differ);
//! * a worker that sees a [`SimError`] retries the point in place with
//!   bounded exponential backoff before declaring it failed — the
//!   retry never re-enters the queue, so "queue empty" always means
//!   "no work left", with no completion race;
//! * each computed result is published atomically, so killing the
//!   process at any instant (SIGTERM, SIGKILL) leaves the store
//!   consistent and a re-run computes only what is missing
//!   (*resumability*);
//! * an in-process [`CancelToken`] provides the graceful counterpart:
//!   workers stop taking new points, finish the one in hand, and the
//!   outcome reports `cancelled`;
//! * with [`EngineConfig::point_deadline`] set, a **supervisor** on the
//!   driving thread watches every in-flight attempt and trips its
//!   [`StopFlag`] when the wall clock runs out — the simulator stops
//!   cooperatively and returns [`SimError::Deadline`] with the same
//!   diagnostic snapshot the deadlock watchdog takes;
//! * a point that exhausts its retries, or trips the deadline
//!   [`POISON_DEADLINE_TRIPS`] times, is **poisoned**: a structured
//!   failure record lands in the store (`poison/`), re-runs skip the
//!   point, and the campaign *continues* — one permanently sick point
//!   degrades its figure cells, never the whole campaign
//!   (`store gc` clears poison and makes the points runnable again);
//! * retry backoff is jittered ±25% by a [`SplitMix64`] stream seeded
//!   purely from `(jitter_seed, point key, attempt)`, so sleeps are
//!   decorrelated across points yet bit-reproducible run to run.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vr_core::{CoreConfig, RunaheadConfig, SimError, SimStats, Simulator, StopFlag};
use vr_isa::SplitMix64;
use vr_mem::MemConfig;
use vr_obs::{Json, CAMPAIGN_SCHEMA};
use vr_workloads::Workload;

use crate::fingerprint::{point_key, PointKey};
use crate::store::{PoisonRecord, ResultStore};

/// Deadline expiries a point is allowed before it is poisoned. Two,
/// not one: a single trip can be an unlucky machine stall (CI noise,
/// page cache cold); the second on the very same point is a verdict.
pub const POISON_DEADLINE_TRIPS: u32 = 2;

/// One simulation point of a campaign: a workload plus the full
/// configuration and budget that determine its statistics.
///
/// The workload is held behind an [`Arc`] because many points of one
/// campaign typically share a workload (the same kernel swept across
/// configurations) and workload images can be large.
#[derive(Clone, Debug)]
pub struct CampaignPoint {
    /// Human-readable name for progress lines and failure reports
    /// (e.g. `"fig7/bfs/vr"`). Not part of the fingerprint.
    pub label: String,
    /// The workload (program text + memory image + entry registers).
    pub workload: Arc<Workload>,
    /// Core configuration.
    pub core: CoreConfig,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Runahead configuration.
    pub ra: RunaheadConfig,
    /// Instruction budget.
    pub max_insts: u64,
}

impl CampaignPoint {
    /// The content address of this point in the result store.
    pub fn key(&self) -> PointKey {
        point_key(&self.workload, &self.core, &self.mem, &self.ra, self.max_insts)
    }
}

/// Anything the campaign engine can drive: a content-addressed unit
/// of work with a label and a way to load/save its result against the
/// [`ResultStore`]. The engine itself (dedup, retries, backoff,
/// poison, deadline supervision, cancellation, resumability) is
/// generic over this — single-core [`CampaignPoint`]s and multi-core
/// `ChipPoint`s flow through the identical machinery.
pub trait SweepPoint: Sync {
    /// The computed result type (stored on success, returned on load).
    type Output: Send;

    /// The content address of this point in the result store. Poison
    /// records are keyed on this too.
    fn key(&self) -> PointKey;

    /// Human-readable name for progress lines and failure reports.
    fn label(&self) -> &str;

    /// Loads this point's stored result, if complete and valid.
    fn load(&self, store: &ResultStore) -> Option<Self::Output>;

    /// Persists a computed result.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O error; the engine degrades a failed
    /// save to "computed but not cached".
    fn save(&self, store: &ResultStore, out: &Self::Output) -> std::io::Result<()>;

    /// Cheap existence check (no payload validation) for status
    /// censuses. The default is the single-record case.
    fn present(&self, store: &ResultStore) -> bool {
        store.contains(self.key())
    }
}

impl SweepPoint for CampaignPoint {
    type Output = SimStats;

    fn key(&self) -> PointKey {
        CampaignPoint::key(self)
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn load(&self, store: &ResultStore) -> Option<SimStats> {
        store.load(self.key())
    }

    fn save(&self, store: &ResultStore, out: &SimStats) -> std::io::Result<()> {
        store.save(self.key(), &self.label, out)
    }
}

/// Per-attempt context handed to an [`Executor`]: which attempt this
/// is and the supervisor's stop handle for it.
#[derive(Clone, Debug)]
pub struct ExecCtx {
    /// 0 on the first try, incremented on each retry.
    pub attempt: u32,
    /// Tripped by the supervisor when [`EngineConfig::point_deadline`]
    /// expires; a cooperative executor stops promptly and returns
    /// [`SimError::Deadline`].
    pub stop: StopFlag,
    /// Worker threads for stepping a multi-core chip point
    /// ([`vr_chip::Chip::set_threads`]); `1` (the default) steps cores
    /// sequentially. An execution knob only — chip stats are
    /// bit-identical at any value, and it never enters a point key.
    pub chip_threads: usize,
}

/// How a campaign point is computed. The indirection exists so tests
/// can inject flaky or instant executors: the real simulator is
/// deterministic, so a genuine [`SimError`] would recur on every
/// retry, making retry/backoff untestable against [`SimExecutor`].
///
/// Generic over the point type (defaulting to [`CampaignPoint`], so
/// plain `impl Executor for X` / `E: Executor` keep meaning the
/// single-core case); [`SimExecutor`] additionally implements
/// `Executor<ChipPoint>` so one executor value serves both scalar and
/// chip sweeps.
pub trait Executor<P: SweepPoint = CampaignPoint>: Sync {
    /// Computes the result for `p`.
    ///
    /// # Errors
    ///
    /// Returns the simulation error; the engine retries up to
    /// [`EngineConfig::max_retries`] times before recording a failure.
    fn execute(&self, p: &P, ctx: &ExecCtx) -> Result<P::Output, SimError>;
}

/// The production executor: one fresh [`Simulator`] per call, with the
/// attempt's [`StopFlag`] installed so the supervisor's deadline can
/// stop it mid-run.
#[derive(Clone, Copy, Default, Debug)]
pub struct SimExecutor;

impl Executor for SimExecutor {
    fn execute(&self, p: &CampaignPoint, ctx: &ExecCtx) -> Result<SimStats, SimError> {
        let mut sim = Simulator::new(
            p.core.clone(),
            p.mem.clone(),
            p.ra.clone(),
            p.workload.program.clone(),
            p.workload.memory.clone(),
            &p.workload.init_regs,
        );
        sim.set_stop_flag(ctx.stop.clone());
        sim.try_run(p.max_insts)
    }
}

/// Cooperative cancellation handle (the in-process analogue of
/// SIGTERM). Cloning shares the flag; any clone can cancel.
#[derive(Clone, Default, Debug)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation: workers finish their current point and
    /// stop. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads. `0` means one per available CPU; `1` runs
    /// inline on the calling thread (fully deterministic ordering).
    pub threads: usize,
    /// Retries per point after the first attempt (so a point is tried
    /// at most `max_retries + 1` times).
    pub max_retries: u32,
    /// Backoff before retry `n` is `min(backoff_base << n,
    /// backoff_cap)`, then jittered ±25% (still capped).
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep, jitter included.
    pub backoff_cap: Duration,
    /// Seed for the backoff jitter stream. The sleep before a given
    /// `(point, attempt)` is a pure function of this seed, so two runs
    /// with equal configs back off identically no matter how the
    /// workers interleave.
    pub jitter_seed: u64,
    /// Wall-clock budget per execution attempt. When set, a supervisor
    /// watches every in-flight attempt and trips its [`StopFlag`] at
    /// the deadline; `None` lets attempts run unbounded.
    pub point_deadline: Option<Duration>,
    /// Threads for stepping each multi-core chip point (forwarded via
    /// [`ExecCtx::chip_threads`]); `1` steps cores sequentially.
    /// Orthogonal to [`EngineConfig::threads`], which parallelizes
    /// *across* points.
    pub chip_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            threads: 0,
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            jitter_seed: 0,
            point_deadline: None,
            chip_threads: 1,
        }
    }
}

impl EngineConfig {
    pub(crate) fn resolved_threads(&self, work: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        };
        t.clamp(1, work.max(1))
    }

    fn backoff(&self, attempt: u32) -> Duration {
        // `attempt` is the attempt that just failed (0-based); shift
        // saturates well before overflow matters.
        let shifted =
            self.backoff_base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        shifted.min(self.backoff_cap)
    }

    /// [`EngineConfig::backoff`] with deterministic ±25% jitter. The
    /// stream is seeded from `(jitter_seed, key, attempt)` alone —
    /// never from shared mutable state — so thread interleaving cannot
    /// change any draw. The result stays within `backoff_cap`.
    fn jittered_backoff(&self, key: PointKey, attempt: u32) -> Duration {
        let base = self.backoff(attempt);
        if base.is_zero() {
            return base;
        }
        let mut rng =
            SplitMix64::new(self.jitter_seed ^ key.0.rotate_left(17) ^ u64::from(attempt));
        let factor = 0.75 + 0.5 * rng.f64_unit(); // [0.75, 1.25)
        Duration::from_secs_f64(base.as_secs_f64() * factor).min(self.backoff_cap)
    }
}

/// What happened to one point, reported through the progress callback.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgressKind {
    /// Result served from the store; no simulation ran.
    CacheHit,
    /// Simulated (possibly after retries) and stored.
    Computed,
    /// An attempt failed; the point will be retried.
    Retried {
        /// The 0-based attempt that failed.
        attempt: u32,
    },
    /// The point was declared unrunnable and a poison record was
    /// published; the campaign continues without it.
    Poisoned,
    /// The point already had a poison record from an earlier run and
    /// was skipped without executing.
    SkippedPoisoned,
    /// All attempts exhausted (and no poison record could be written,
    /// or the run was cancelled mid-retry); the point is recorded as
    /// failed.
    Failed,
}

/// One progress notification. `done` counts points that reached a
/// terminal state (hit, computed or failed) *including* this one —
/// retries report the current `done` without advancing it.
#[derive(Clone, Copy, Debug)]
pub struct ProgressEvent<'a> {
    /// Terminal points so far.
    pub done: u64,
    /// Unique points in the campaign.
    pub total: u64,
    /// The point's label.
    pub label: &'a str,
    /// What just happened.
    pub kind: ProgressKind,
}

/// Progress callback type: called from worker threads, so it must be
/// `Sync` (the CLI wraps a locked `stderr` writer).
pub type ProgressSink<'a> = &'a (dyn Fn(&ProgressEvent<'_>) + Sync);

/// Aggregate result of [`run_campaign`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct CampaignOutcome {
    /// Points submitted (before dedup).
    pub submitted: u64,
    /// Points whose key duplicated an earlier point (skipped: same
    /// key, same result by construction).
    pub duplicates: u64,
    /// Unique points driven.
    pub total: u64,
    /// Points served from the store.
    pub cache_hits: u64,
    /// Points simulated this run.
    pub computed: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// `(label, error)` for points poisoned *this run* (retries
    /// exhausted or repeated deadline trips; a poison record was
    /// published for each).
    pub poisoned: Vec<(String, String)>,
    /// Points skipped because an earlier run already poisoned them.
    pub skipped_poisoned: u64,
    /// `(label, error)` for points that failed without a poison record
    /// (cancelled mid-retry, or the poison write itself failed).
    pub failed: Vec<(String, String)>,
    /// Whether the run stopped early on a [`CancelToken`].
    pub cancelled: bool,
}

impl CampaignOutcome {
    /// True when every unique point reached a stored result.
    pub fn complete(&self) -> bool {
        !self.cancelled
            && self.failed.is_empty()
            && self.poisoned.is_empty()
            && self.skipped_poisoned == 0
            && self.cache_hits + self.computed == self.total
    }

    /// True when the campaign finished *degraded*: every point reached
    /// a terminal state and the only shortfall is poisoned points
    /// (figures render HOLE cells for those). [`CampaignOutcome::complete`]
    /// implies this.
    pub fn degraded_complete(&self) -> bool {
        !self.cancelled
            && self.failed.is_empty()
            && self.cache_hits + self.computed + self.poisoned.len() as u64 + self.skipped_poisoned
                == self.total
    }

    /// Machine-readable rendering under [`CAMPAIGN_SCHEMA`].
    pub fn to_json(&self) -> Json {
        // Exhaustive destructuring: a new outcome field must decide
        // how it exports before this compiles.
        let CampaignOutcome {
            submitted,
            duplicates,
            total,
            cache_hits,
            computed,
            retries,
            poisoned,
            skipped_poisoned,
            failed,
            cancelled,
        } = self;
        let label_error_arr = |items: &[(String, String)]| {
            Json::Arr(
                items
                    .iter()
                    .map(|(label, error)| {
                        Json::Obj(vec![
                            ("label".into(), Json::from(label.as_str())),
                            ("error".into(), Json::from(error.as_str())),
                        ])
                    })
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("schema".into(), Json::from(CAMPAIGN_SCHEMA)),
            ("submitted".into(), Json::U64(*submitted)),
            ("duplicates".into(), Json::U64(*duplicates)),
            ("total".into(), Json::U64(*total)),
            ("cache_hits".into(), Json::U64(*cache_hits)),
            ("computed".into(), Json::U64(*computed)),
            ("retries".into(), Json::U64(*retries)),
            ("poisoned".into(), label_error_arr(poisoned)),
            ("skipped_poisoned".into(), Json::U64(*skipped_poisoned)),
            ("failed".into(), label_error_arr(failed)),
            ("cancelled".into(), Json::Bool(*cancelled)),
        ])
    }
}

/// Cheap census for `campaign status`: which unique points already
/// have a record file (existence only — `verify` does validation).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StatusReport {
    /// Points submitted (before dedup).
    pub submitted: u64,
    /// Unique points.
    pub total: u64,
    /// Unique points with a record present.
    pub present: u64,
    /// Unique points without a record that a run would compute
    /// (excludes poisoned points — those are skipped, so `missing`
    /// keeps meaning "what the next run will simulate").
    pub missing: u64,
    /// Unique points with a valid poison record (skipped by runs until
    /// `store gc` clears them).
    pub poisoned: u64,
}

impl StatusReport {
    /// Machine-readable rendering under [`CAMPAIGN_SCHEMA`].
    pub fn to_json(&self) -> Json {
        // Exhaustive destructuring: a new status field must decide how
        // it exports before this compiles.
        let StatusReport { submitted, total, present, missing, poisoned } = self;
        Json::Obj(vec![
            ("schema".into(), Json::from(CAMPAIGN_SCHEMA)),
            ("kind".into(), Json::from("status")),
            ("submitted".into(), Json::U64(*submitted)),
            ("total".into(), Json::U64(*total)),
            ("present".into(), Json::U64(*present)),
            ("missing".into(), Json::U64(*missing)),
            ("poisoned".into(), Json::U64(*poisoned)),
        ])
    }
}

/// Computes the [`StatusReport`] for `points` against `store`.
pub fn campaign_status<P: SweepPoint>(points: &[P], store: &ResultStore) -> StatusReport {
    let mut seen = HashSet::new();
    let mut rep = StatusReport { submitted: points.len() as u64, ..StatusReport::default() };
    for p in points {
        if !seen.insert(p.key()) {
            continue;
        }
        rep.total += 1;
        if p.present(store) {
            rep.present += 1;
        } else if store.is_poisoned(p.key()) {
            rep.poisoned += 1;
        } else {
            rep.missing += 1;
        }
    }
    rep
}

/// One worker's in-flight attempt, visible to the supervisor: when it
/// started and how to stop it.
struct InFlight {
    started: Instant,
    stop: StopFlag,
}

/// Shared mutable state of one campaign run.
struct Shared<'a> {
    queue: Mutex<VecDeque<usize>>,
    store: &'a ResultStore,
    cfg: &'a EngineConfig,
    cancel: &'a CancelToken,
    progress: Option<ProgressSink<'a>>,
    total: u64,
    done: AtomicU64,
    cache_hits: AtomicU64,
    computed: AtomicU64,
    retries: AtomicU64,
    skipped_poisoned: AtomicU64,
    poisoned: Mutex<Vec<(usize, String)>>,
    failed: Mutex<Vec<(usize, String)>>,
    /// One slot per worker; armed around each execute call.
    inflight: Vec<Mutex<Option<InFlight>>>,
}

impl Shared<'_> {
    fn emit(&self, done: u64, label: &str, kind: ProgressKind) {
        if let Some(sink) = self.progress {
            sink(&ProgressEvent { done, total: self.total, label, kind });
        }
    }
}

/// Drives `points` to completion (see the module docs for the full
/// contract). Returns the aggregate outcome; never panics on store or
/// simulation trouble — a worker panic (an executor bug) does
/// propagate to the caller, matching `parallel_map`.
///
/// Spawns fresh worker threads per call; long-running drivers (the
/// serve loop, repeated figure sweeps) should hold a [`WorkerPool`]
/// and use [`run_campaign_on`] to amortize the spawn cost.
pub fn run_campaign<P: SweepPoint, E: Executor<P>>(
    points: &[P],
    store: &ResultStore,
    exec: &E,
    cfg: &EngineConfig,
    cancel: &CancelToken,
    progress: Option<ProgressSink<'_>>,
) -> CampaignOutcome {
    run_campaign_on(None, points, store, exec, cfg, cancel, progress)
}

/// [`run_campaign`] on a caller-provided [`WorkerPool`]: the campaign
/// workers run as a broadcast job on `pool`'s persistent threads
/// instead of freshly spawned ones, so back-to-back campaigns (one per
/// serve manifest, one per figure) pay the thread-spawn cost once per
/// process. `pool: None` falls back to scoped spawning; the effective
/// worker count is additionally capped by the pool size. Results are
/// identical either way — the scheduler only changes *where* workers
/// run.
pub fn run_campaign_on<P: SweepPoint, E: Executor<P>>(
    pool: Option<&vr_pool::WorkerPool>,
    points: &[P],
    store: &ResultStore,
    exec: &E,
    cfg: &EngineConfig,
    cancel: &CancelToken,
    progress: Option<ProgressSink<'_>>,
) -> CampaignOutcome {
    // Dedup by key: the first occurrence names the point in progress
    // output; later duplicates would compute the identical record.
    let mut seen = HashSet::new();
    let mut unique: Vec<usize> = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        if seen.insert(p.key()) {
            unique.push(i);
        }
    }
    let duplicates = (points.len() - unique.len()) as u64;
    let total = unique.len() as u64;
    let mut threads = cfg.resolved_threads(unique.len());
    if let Some(pool) = pool {
        threads = threads.min(pool.size());
    }

    let shared = Shared {
        queue: Mutex::new(unique.iter().copied().collect()),
        store,
        cfg,
        cancel,
        progress,
        total,
        done: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        computed: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        skipped_poisoned: AtomicU64::new(0),
        poisoned: Mutex::new(Vec::new()),
        failed: Mutex::new(Vec::new()),
        inflight: (0..threads).map(|_| Mutex::new(None)).collect(),
    };

    if threads == 1 && cfg.point_deadline.is_none() {
        // Fully deterministic inline path (chaos tests depend on it).
        worker(points, &shared, exec, 0);
    } else if let Some(pool) = pool {
        let shared = &shared;
        let job = move |slot: usize| worker(points, shared, exec, slot);
        if let Some(deadline) = cfg.point_deadline {
            // The driving thread is busy inside `pool.run`, so the
            // supervisor gets its own scoped thread, watching a done
            // flag instead of join handles. The drop guard raises the
            // flag even when a worker panic unwinds out of `pool.run`,
            // so the supervisor always exits and the scope can join it
            // (then re-raise the panic).
            struct RaiseOnDrop<'a>(&'a AtomicBool);
            impl Drop for RaiseOnDrop<'_> {
                fn drop(&mut self) {
                    self.0.store(true, Ordering::Release);
                }
            }
            let done = AtomicBool::new(false);
            std::thread::scope(|scope| {
                let done = &done;
                scope.spawn(move || {
                    supervise(shared, deadline, || done.load(Ordering::Acquire));
                });
                let _raise = RaiseOnDrop(done);
                pool.run(threads, &job);
            });
        } else {
            pool.run(threads, &job);
        }
    } else {
        std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = (0..threads)
                .map(|slot| scope.spawn(move || worker(points, shared, exec, slot)))
                .collect();
            // The driving thread doubles as the supervisor; with no
            // deadline the scope just joins the workers (and
            // propagates any panic).
            if let Some(deadline) = cfg.point_deadline {
                supervise(shared, deadline, || {
                    handles.iter().all(std::thread::ScopedJoinHandle::is_finished)
                });
            }
        });
    }

    // Deterministic orders regardless of worker interleaving.
    let drain = |m: Mutex<Vec<(usize, String)>>| {
        let mut v = m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        v.sort_by_key(|&(i, _)| i);
        v.into_iter().map(|(i, e)| (points[i].label().to_string(), e)).collect::<Vec<_>>()
    };
    CampaignOutcome {
        submitted: points.len() as u64,
        duplicates,
        total,
        cache_hits: shared.cache_hits.into_inner(),
        computed: shared.computed.into_inner(),
        retries: shared.retries.into_inner(),
        poisoned: drain(shared.poisoned),
        skipped_poisoned: shared.skipped_poisoned.into_inner(),
        failed: drain(shared.failed),
        cancelled: cancel.is_cancelled(),
    }
}

/// The deadline supervisor: polls every worker's in-flight slot and
/// trips the [`StopFlag`] of any attempt past its wall-clock budget.
/// Runs until `all_done` reports every worker has exited (join-handle
/// census on the scoped path, a done flag on the pooled path); pure
/// observation plus one atomic store, so it can never wedge a worker.
fn supervise(shared: &Shared<'_>, deadline: Duration, all_done: impl Fn() -> bool) {
    let poll = (deadline / 8).clamp(Duration::from_millis(1), Duration::from_millis(50));
    loop {
        if all_done() {
            return;
        }
        for slot in &shared.inflight {
            let guard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(fl) = guard.as_ref() {
                if fl.started.elapsed() >= deadline {
                    fl.stop.trip();
                }
            }
        }
        std::thread::sleep(poll);
    }
}

/// One worker: pop from the shared injector until it is empty or the
/// campaign is cancelled. Retries happen in place — a point never
/// re-enters the queue, so an empty queue always means no pending work.
/// `slot` indexes this worker's in-flight slot for the supervisor.
fn worker<P: SweepPoint, E: Executor<P>>(points: &[P], shared: &Shared<'_>, exec: &E, slot: usize) {
    loop {
        if shared.cancel.is_cancelled() {
            return;
        }
        let idx = {
            let mut q = shared.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            q.pop_front()
        };
        let Some(idx) = idx else { return };
        let p = &points[idx];
        let key = p.key();

        if let Some(_stats) = p.load(shared.store) {
            let done = shared.done.fetch_add(1, Ordering::Relaxed) + 1;
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.emit(done, p.label(), ProgressKind::CacheHit);
            continue;
        }

        if shared.store.is_poisoned(key) {
            // An earlier run already gave up on this point; skip it
            // rather than burning its whole retry budget again
            // (`store gc` un-poisons).
            let done = shared.done.fetch_add(1, Ordering::Relaxed) + 1;
            shared.skipped_poisoned.fetch_add(1, Ordering::Relaxed);
            shared.emit(done, p.label(), ProgressKind::SkippedPoisoned);
            continue;
        }

        let mut attempt = 0u32;
        let mut deadline_trips = 0u32;
        loop {
            let ctx =
                ExecCtx { attempt, stop: StopFlag::new(), chip_threads: shared.cfg.chip_threads };
            *shared.inflight[slot].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                Some(InFlight { started: Instant::now(), stop: ctx.stop.clone() });
            let result = exec.execute(p, &ctx);
            *shared.inflight[slot].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
            match result {
                Ok(stats) => {
                    // A failed save degrades to "computed but not
                    // cached" — the result is still counted; a re-run
                    // will recompute the point.
                    let _ = p.save(shared.store, &stats);
                    let done = shared.done.fetch_add(1, Ordering::Relaxed) + 1;
                    shared.computed.fetch_add(1, Ordering::Relaxed);
                    shared.emit(done, p.label(), ProgressKind::Computed);
                    break;
                }
                Err(e) => {
                    if matches!(e, SimError::Deadline(_)) {
                        deadline_trips += 1;
                    }
                    let cancelled = shared.cancel.is_cancelled();
                    let give_up = cancelled
                        || deadline_trips >= POISON_DEADLINE_TRIPS
                        || attempt >= shared.cfg.max_retries;
                    if !give_up {
                        shared.retries.fetch_add(1, Ordering::Relaxed);
                        shared.emit(
                            shared.done.load(Ordering::Relaxed),
                            p.label(),
                            ProgressKind::Retried { attempt },
                        );
                        let pause = shared.cfg.jittered_backoff(key, attempt);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        attempt += 1;
                        continue;
                    }
                    let done = shared.done.fetch_add(1, Ordering::Relaxed) + 1;
                    // Cancellation is not a verdict on the point — no
                    // poison record, just a plain failure this run.
                    let poison = !cancelled
                        && shared
                            .store
                            .poison(&PoisonRecord {
                                key,
                                label: p.label().to_string(),
                                error: e.to_string(),
                                attempts: attempt + 1,
                                deadline_trips,
                            })
                            .is_ok();
                    let (list, kind) = if poison {
                        (&shared.poisoned, ProgressKind::Poisoned)
                    } else {
                        (&shared.failed, ProgressKind::Failed)
                    };
                    list.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((idx, e.to_string()));
                    shared.emit(done, p.label(), kind);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use vr_workloads::{hpcdb, Scale};

    fn tiny_points(n: u64) -> Vec<CampaignPoint> {
        let w = Arc::new(hpcdb::kangaroo(Scale::Test));
        (0..n)
            .map(|i| CampaignPoint {
                label: format!("p{i}"),
                workload: Arc::clone(&w),
                core: CoreConfig::table1(),
                mem: MemConfig::tiny_for_tests(),
                ra: RunaheadConfig::none(),
                // Distinct budgets -> distinct keys.
                max_insts: 100 + i,
            })
            .collect()
    }

    /// Executor returning synthetic stats instantly (cycle count
    /// derived from the budget so records are distinguishable).
    struct FakeExec;
    impl Executor for FakeExec {
        fn execute(&self, p: &CampaignPoint, _ctx: &ExecCtx) -> Result<SimStats, SimError> {
            Ok(SimStats {
                cycles: p.max_insts * 3,
                instructions: p.max_insts,
                ..SimStats::default()
            })
        }
    }

    /// Fails the first `fail_first` attempts of every point.
    struct FlakyExec {
        fail_first: u32,
        calls: AtomicU32,
    }
    impl Executor for FlakyExec {
        fn execute(&self, p: &CampaignPoint, ctx: &ExecCtx) -> Result<SimStats, SimError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if ctx.attempt < self.fail_first {
                Err(SimError::Memory { cycle: 1, what: format!("injected fault on {}", p.label) })
            } else {
                FakeExec.execute(p, ctx)
            }
        }
    }

    /// Blocks points whose label contains `slow` until the attempt's
    /// stop flag trips, then reports a deadline — the cooperative
    /// contract [`SimExecutor`] implements via the simulator.
    struct SlowExec;
    impl Executor for SlowExec {
        fn execute(&self, p: &CampaignPoint, ctx: &ExecCtx) -> Result<SimStats, SimError> {
            if !p.label.contains("slow") {
                return FakeExec.execute(p, ctx);
            }
            while !ctx.stop.is_set() {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(SimError::Deadline(Box::new(test_dump())))
        }
    }

    fn test_dump() -> vr_core::DeadlockDump {
        vr_core::DeadlockDump {
            cycle: 100,
            last_commit_cycle: 50,
            watchdog: 40,
            committed_insts: 10,
            pc: 0x4,
            rob_len: 1,
            rob_cap: 350,
            iq_used: 0,
            iq_cap: 128,
            lq_used: 0,
            lq_cap: 128,
            sq_used: 0,
            sq_cap: 72,
            fetch_q_len: 0,
            store_buffer_len: 0,
            free_int: 1,
            free_fp: 1,
            mshr_outstanding: 0,
            oldest: None,
            episode: None,
            halted: false,
            fetch_done: false,
        }
    }

    fn cfg_fast(threads: usize) -> EngineConfig {
        EngineConfig {
            threads,
            max_retries: 2,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            jitter_seed: 0,
            point_deadline: None,
            chip_threads: 1,
        }
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!(
            "vr-engine-test-{tag}-{}-{}",
            std::process::id(),
            crate::test_nonce()
        ));
        let store = ResultStore::open(&dir).expect("open store");
        (dir, store)
    }

    #[test]
    fn campaign_runs_then_resumes_with_zero_recomputation() {
        let (dir, store) = tmp_store("resume");
        let points = tiny_points(6);
        let first =
            run_campaign(&points, &store, &FakeExec, &cfg_fast(3), &CancelToken::new(), None);
        assert!(first.complete(), "{first:?}");
        assert_eq!((first.computed, first.cache_hits), (6, 0));

        // Resume with a fresh store handle: everything is a hit.
        let store2 = ResultStore::open(&dir).unwrap();
        let second =
            run_campaign(&points, &store2, &FakeExec, &cfg_fast(3), &CancelToken::new(), None);
        assert!(second.complete());
        assert_eq!((second.computed, second.cache_hits), (0, 6), "resume recomputed");

        // Partial resume: drop two records, only those recompute.
        for p in &points[..2] {
            std::fs::remove_file(store2.records_dir().join(format!("{}.json", p.key().hex())))
                .unwrap();
        }
        let third =
            run_campaign(&points, &store2, &FakeExec, &cfg_fast(1), &CancelToken::new(), None);
        assert_eq!((third.computed, third.cache_hits), (2, 4));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicates_are_skipped_not_recomputed() {
        let (dir, store) = tmp_store("dedup");
        let mut points = tiny_points(3);
        points.extend(tiny_points(3)); // same 3 keys again
        let out = run_campaign(&points, &store, &FakeExec, &cfg_fast(1), &CancelToken::new(), None);
        assert_eq!(out.submitted, 6);
        assert_eq!(out.duplicates, 3);
        assert_eq!(out.total, 3);
        assert_eq!(out.computed, 3);
        assert!(out.complete());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_faults_are_retried_with_counts() {
        let (dir, store) = tmp_store("retry");
        let points = tiny_points(4);
        let exec = FlakyExec { fail_first: 2, calls: AtomicU32::new(0) };
        let out = run_campaign(&points, &store, &exec, &cfg_fast(2), &CancelToken::new(), None);
        assert!(out.complete(), "{out:?}");
        assert_eq!(out.computed, 4);
        assert_eq!(out.retries, 8, "2 failed attempts per point");
        assert_eq!(exec.calls.load(Ordering::Relaxed), 12, "3 attempts per point");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_faults_poison_in_order_and_reruns_skip_them() {
        let (dir, store) = tmp_store("fail");
        let points = tiny_points(3);
        let exec = FlakyExec { fail_first: u32::MAX, calls: AtomicU32::new(0) };
        let out = run_campaign(&points, &store, &exec, &cfg_fast(2), &CancelToken::new(), None);
        assert!(!out.complete());
        assert!(out.degraded_complete(), "poison degrades, it does not wedge: {out:?}");
        assert_eq!(out.computed, 0);
        assert!(out.failed.is_empty(), "exhausted retries poison, not fail: {out:?}");
        assert_eq!(out.poisoned.len(), 3);
        let labels: Vec<&str> = out.poisoned.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["p0", "p1", "p2"], "poisonings sorted by submission order");
        assert!(out.poisoned[0].1.contains("injected fault"), "{:?}", out.poisoned[0]);
        let calls_first = exec.calls.load(Ordering::Relaxed);
        assert_eq!(calls_first, 9, "3 attempts per point");

        // Each point now carries a structured poison record...
        for p in &points {
            let rec = store.load_poison(p.key()).expect("poison record");
            assert_eq!(rec.attempts, 3);
            assert_eq!(rec.deadline_trips, 0);
            assert!(rec.error.contains("injected fault"));
        }
        let status = campaign_status(&points, &store);
        assert_eq!((status.present, status.missing, status.poisoned), (0, 0, 3));

        // ...so a re-run skips them without executing anything.
        let out2 = run_campaign(&points, &store, &exec, &cfg_fast(2), &CancelToken::new(), None);
        assert_eq!(out2.skipped_poisoned, 3);
        assert!(out2.degraded_complete());
        assert_eq!(exec.calls.load(Ordering::Relaxed), calls_first, "no attempts burned");

        // gc clears the poison; the points execute again.
        assert_eq!(store.gc().unwrap().poison_removed, 3);
        let out3 = run_campaign(&points, &store, &exec, &cfg_fast(2), &CancelToken::new(), None);
        assert_eq!(out3.poisoned.len(), 3, "still failing, poisoned afresh");
        assert!(exec.calls.load(Ordering::Relaxed) > calls_first);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_trips_twice_then_poisons_and_campaign_continues() {
        let (dir, store) = tmp_store("deadline");
        let mut points = tiny_points(4);
        points[2].label = "p2-slow".into();
        let cfg = EngineConfig { point_deadline: Some(Duration::from_millis(25)), ..cfg_fast(2) };
        let t0 = std::time::Instant::now();
        let out = run_campaign(&points, &store, &SlowExec, &cfg, &CancelToken::new(), None);
        assert!(out.degraded_complete(), "{out:?}");
        assert_eq!(out.computed, 3, "healthy points unaffected");
        assert_eq!(out.poisoned.len(), 1);
        assert_eq!(out.poisoned[0].0, "p2-slow");
        assert!(out.poisoned[0].1.contains("deadline"), "{:?}", out.poisoned[0]);

        let rec = store.load_poison(points[2].key()).expect("poison record");
        assert_eq!(
            rec.deadline_trips, POISON_DEADLINE_TRIPS,
            "second trip is the verdict (one retry in between)"
        );
        assert_eq!(rec.attempts, 2);
        // Two supervised attempts of ~25ms each, not max_retries+1
        // unbounded hangs.
        assert!(t0.elapsed() < Duration::from_secs(5), "took {:?}", t0.elapsed());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancellation_stops_taking_work_and_flags_the_outcome() {
        let (dir, store) = tmp_store("cancel");
        let points = tiny_points(8);
        let token = CancelToken::new();
        token.cancel();
        let out = run_campaign(&points, &store, &FakeExec, &cfg_fast(2), &token, None);
        assert!(out.cancelled);
        assert!(!out.complete());
        assert_eq!(out.computed + out.cache_hits, 0, "pre-cancelled run took work");

        // Cancel from the progress callback after 3 completions: the
        // run stops early but everything stored so far is durable.
        let token = CancelToken::new();
        let sink = |ev: &ProgressEvent<'_>| {
            if ev.done >= 3 {
                token.cancel();
            }
        };
        let out = run_campaign(&points, &store, &FakeExec, &cfg_fast(1), &token, Some(&sink));
        assert!(out.cancelled);
        assert!(out.computed >= 3 && out.computed < 8, "computed={}", out.computed);
        let status = campaign_status(&points, &store);
        assert_eq!(status.present, out.computed);
        assert_eq!(status.missing, 8 - out.computed);

        // A resumed run finishes the remainder only.
        let out2 =
            run_campaign(&points, &store, &FakeExec, &cfg_fast(2), &CancelToken::new(), None);
        assert!(out2.complete());
        assert_eq!(out2.computed, 8 - out.computed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_executor_matches_direct_simulation_and_status_tracks_store() {
        let (dir, store) = tmp_store("simexec");
        let w = Arc::new(hpcdb::kangaroo(Scale::Test));
        let p = CampaignPoint {
            label: "kangaroo/base".into(),
            workload: Arc::clone(&w),
            core: CoreConfig::table1(),
            mem: MemConfig::tiny_for_tests(),
            ra: RunaheadConfig::none(),
            max_insts: 2_000,
        };
        let before = campaign_status(std::slice::from_ref(&p), &store);
        assert_eq!((before.present, before.missing), (0, 1));

        let out = run_campaign(
            std::slice::from_ref(&p),
            &store,
            &SimExecutor,
            &cfg_fast(1),
            &CancelToken::new(),
            None,
        );
        assert!(out.complete(), "{out:?}");

        // The stored record equals a direct simulation bit-for-bit.
        let ctx = ExecCtx { attempt: 0, stop: StopFlag::new(), chip_threads: 1 };
        let direct = SimExecutor.execute(&p, &ctx).expect("sim runs");
        assert_eq!(store.load(p.key()), Some(direct));

        let after = campaign_status(std::slice::from_ref(&p), &store);
        assert_eq!((after.present, after.missing), (1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn outcome_json_is_schema_tagged_and_exhaustive() {
        let out = CampaignOutcome {
            submitted: 10,
            duplicates: 2,
            total: 8,
            cache_hits: 5,
            computed: 1,
            retries: 4,
            poisoned: vec![("p3".into(), "deadline".into())],
            skipped_poisoned: 0,
            failed: vec![("p7".into(), "deadlock".into())],
            cancelled: false,
        };
        let j = out.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(CAMPAIGN_SCHEMA));
        assert_eq!(j.get("cache_hits").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("cancelled"), Some(&Json::Bool(false)));
        let failed = j.get("failed").and_then(Json::as_arr).unwrap();
        assert_eq!(failed[0].get("label").and_then(Json::as_str), Some("p7"));
        let poisoned = j.get("poisoned").and_then(Json::as_arr).unwrap();
        assert_eq!(poisoned[0].get("label").and_then(Json::as_str), Some("p3"));
        // Round-trips through text.
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);

        // Status JSON mirrors the same schema and every field.
        let st = StatusReport { submitted: 10, total: 8, present: 5, missing: 2, poisoned: 1 };
        let js = st.to_json();
        assert_eq!(js.get("schema").and_then(Json::as_str), Some(CAMPAIGN_SCHEMA));
        assert_eq!(js.get("kind").and_then(Json::as_str), Some("status"));
        assert_eq!(js.get("missing").and_then(Json::as_u64), Some(2));
        assert_eq!(js.get("poisoned").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn engine_config_backoff_is_bounded() {
        let cfg = EngineConfig {
            threads: 1,
            max_retries: 40,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            ..EngineConfig::default()
        };
        assert_eq!(cfg.backoff(0), Duration::from_millis(10));
        assert_eq!(cfg.backoff(1), Duration::from_millis(20));
        assert_eq!(cfg.backoff(3), Duration::from_millis(80));
        assert_eq!(cfg.backoff(63), Duration::from_millis(80), "no overflow at large attempts");
        assert_eq!(cfg.resolved_threads(100), 1);
        assert_eq!(EngineConfig::default().resolved_threads(0), 1, "empty campaign still valid");
    }

    #[test]
    fn backoff_jitter_is_seeded_bounded_and_reproducible() {
        let cfg = EngineConfig {
            backoff_base: Duration::from_millis(40),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 7,
            ..EngineConfig::default()
        };
        let keys = [PointKey(0x1111), PointKey(0x2222), PointKey(0x3333)];
        let draw = |cfg: &EngineConfig| {
            let mut v = Vec::new();
            for key in keys {
                for attempt in 0..5 {
                    v.push(cfg.jittered_backoff(key, attempt));
                }
            }
            v
        };
        let a = draw(&cfg);
        // Pure function of (seed, key, attempt): replays identically.
        assert_eq!(a, draw(&cfg));
        // Every sleep within ±25% of the un-jittered value and capped.
        let mut distinct = std::collections::HashSet::new();
        for (i, key) in keys.iter().enumerate() {
            for attempt in 0..5u32 {
                let jittered = a[i * 5 + attempt as usize];
                let plain = cfg.backoff(attempt).as_secs_f64();
                assert!(jittered <= cfg.backoff_cap);
                assert!(
                    (0.75 * plain..1.25 * plain).contains(&jittered.as_secs_f64()),
                    "key {key:?} attempt {attempt}: {jittered:?} vs plain {plain}s"
                );
                distinct.insert(jittered);
            }
        }
        assert!(distinct.len() > 5, "jitter must decorrelate points: {distinct:?}");
        // A different seed draws a different schedule.
        let other = draw(&EngineConfig { jitter_seed: 8, ..cfg });
        assert_ne!(a, other);
        // The cap binds even after jitter pushes past it.
        let tight = EngineConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(100),
            jitter_seed: 3,
            ..EngineConfig::default()
        };
        for attempt in 0..6 {
            assert!(tight.jittered_backoff(keys[0], attempt) <= tight.backoff_cap);
        }
        // Zero backoff stays zero (test configs sleep nothing).
        let zero = EngineConfig {
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            ..EngineConfig::default()
        };
        assert_eq!(zero.jittered_backoff(keys[0], 3), Duration::ZERO);
    }
}
