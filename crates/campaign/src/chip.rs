//! Multi-core chip points for the campaign engine (DESIGN.md §16).
//!
//! A [`ChipPoint`] is one multi-core simulation: a [`ChipConfig`]
//! (core count, LLC banking), one core/memory configuration shared by
//! every core, and one workload + runahead config per core slot. It
//! flows through the *same* engine machinery as a single-core
//! [`crate::CampaignPoint`] — dedup, retries, deadlines, poison,
//! sharding — via the [`SweepPoint`] impl below.
//!
//! Storage: a chip point's result ([`ChipRun`]) is decomposed into
//! ordinary per-core `SimStats` records (under derived keys,
//! [`chip_core_key`]) plus one chip-level contention record under the
//! store's `chip/` directory ([`ResultStore::save_chip`]). A load is a
//! cache hit only when *every* piece is present and valid, so a
//! campaign killed between the per-core saves and the chip save simply
//! recomputes the point.

use std::sync::Arc;

use vr_chip::{Chip, ChipConfig, ChipRun, CoreSlot};
use vr_core::{CoreConfig, RunaheadConfig, SimError};
use vr_mem::MemConfig;
use vr_obs::Fnv64;
use vr_workloads::Workload;

use crate::engine::{ExecCtx, Executor, SimExecutor, SweepPoint};
use crate::fingerprint::{PointKey, CODE_SALT};
use crate::store::ResultStore;

/// One core's share of a chip point: which workload it runs and with
/// which runahead configuration (heterogeneous placements — e.g. VR on
/// even cores only — are just different slot vectors).
#[derive(Clone, Debug)]
pub struct ChipSlot {
    /// The workload this core executes.
    pub workload: Arc<Workload>,
    /// The runahead configuration for this core.
    pub ra: RunaheadConfig,
}

/// One multi-core simulation point of a campaign.
#[derive(Clone, Debug)]
pub struct ChipPoint {
    /// Human-readable name for progress lines and failure reports
    /// (e.g. `"fig-chip/4x-bfs/vr"`). Not part of the fingerprint.
    pub label: String,
    /// Chip topology (core count, LLC banking, shared MSHR budget).
    pub chip: ChipConfig,
    /// Core configuration, shared by every core.
    pub core: CoreConfig,
    /// Memory-system configuration, shared by every core.
    pub mem: MemConfig,
    /// Per-core workload/runahead slots (`slots.len() == chip.cores`).
    pub slots: Vec<ChipSlot>,
    /// Per-core instruction budget.
    pub max_insts: u64,
}

impl ChipPoint {
    /// The content address of this point (see [`chip_point_key`]).
    pub fn key(&self) -> PointKey {
        chip_point_key(&self.chip, &self.core, &self.mem, &self.slots, self.max_insts)
    }
}

/// Fingerprints one chip point: the chip topology, the shared
/// core/memory configuration, every slot's workload *content* and
/// runahead config (order-sensitive — placement matters under
/// contention), the budget, and [`CODE_SALT`]. The same hashing
/// discipline as [`crate::point_key`].
pub fn chip_point_key(
    chip: &ChipConfig,
    core: &CoreConfig,
    mem: &MemConfig,
    slots: &[ChipSlot],
    max_insts: u64,
) -> PointKey {
    let mut h = Fnv64::new();
    h.write_str("vr-chip-point");
    h.write_u64(CODE_SALT);
    chip.fingerprint(&mut h);
    core.fingerprint(&mut h);
    mem.fingerprint(&mut h);
    h.write_u64(slots.len() as u64);
    for s in slots {
        let w = &s.workload;
        h.write_str(&w.name);
        h.write_str(&w.program.to_listing());
        h.write_u64(w.memory.digest());
        h.write_u64(w.init_regs.len() as u64);
        for &(r, v) in &w.init_regs {
            h.write_u64(r.index() as u64);
            h.write_u64(v);
        }
        s.ra.fingerprint(&mut h);
    }
    h.write_u64(max_insts);
    PointKey(h.finish())
}

/// The derived key under which core `i`'s `SimStats` of chip point
/// `base` is stored (an ordinary `records/` record — the chip-level
/// counters live separately under `chip/`).
pub fn chip_core_key(base: PointKey, core: usize) -> PointKey {
    let mut h = Fnv64::new();
    h.write_str("vr-chip-core");
    h.write_u64(base.0);
    h.write_u64(core as u64);
    PointKey(h.finish())
}

impl SweepPoint for ChipPoint {
    type Output = ChipRun;

    fn key(&self) -> PointKey {
        ChipPoint::key(self)
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn load(&self, store: &ResultStore) -> Option<ChipRun> {
        let base = self.key();
        let chip = store.load_chip(base)?;
        let per_core = (0..self.slots.len())
            .map(|i| store.load(chip_core_key(base, i)))
            .collect::<Option<Vec<_>>>()?;
        Some(ChipRun { per_core, chip })
    }

    fn save(&self, store: &ResultStore, out: &ChipRun) -> std::io::Result<()> {
        let base = self.key();
        for (i, stats) in out.per_core.iter().enumerate() {
            store.save(chip_core_key(base, i), &format!("{}#core{i}", self.label), stats)?;
        }
        // Chip record last: its presence marks the point complete
        // (`load` checks it first), so a crash mid-save reads as a
        // plain miss, never a torn result.
        store.save_chip(base, &self.label, &out.chip)
    }

    fn present(&self, store: &ResultStore) -> bool {
        let base = self.key();
        store.contains_chip(base)
            && (0..self.slots.len()).all(|i| store.contains(chip_core_key(base, i)))
    }
}

impl Executor<ChipPoint> for SimExecutor {
    fn execute(&self, p: &ChipPoint, ctx: &ExecCtx) -> Result<ChipRun, SimError> {
        let slots = p
            .slots
            .iter()
            .map(|s| CoreSlot {
                ra: s.ra.clone(),
                program: s.workload.program.clone(),
                memory: s.workload.memory.clone(),
                init_regs: s.workload.init_regs.clone(),
            })
            .collect();
        let mut chip = Chip::new(p.chip, p.core.clone(), p.mem.clone(), slots);
        chip.set_stop_flag(ctx.stop.clone());
        chip.set_threads(ctx.chip_threads);
        chip.try_run(p.max_insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_campaign, CancelToken, EngineConfig};
    use vr_workloads::{hpcdb, Scale};

    fn tmp_store(tag: &str) -> (std::path::PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!(
            "vr-chip-point-test-{tag}-{}-{}",
            std::process::id(),
            crate::test_nonce()
        ));
        (dir.clone(), ResultStore::open(&dir).expect("open store"))
    }

    fn point(cores: usize, insts: u64) -> ChipPoint {
        let w = Arc::new(hpcdb::kangaroo(Scale::Test));
        ChipPoint {
            label: format!("chip/{cores}x"),
            chip: ChipConfig::with_cores(cores),
            core: CoreConfig::table1(),
            mem: MemConfig::tiny_for_tests(),
            slots: (0..cores)
                .map(|i| ChipSlot {
                    workload: Arc::clone(&w),
                    ra: if i % 2 == 0 { RunaheadConfig::vector() } else { RunaheadConfig::none() },
                })
                .collect(),
            max_insts: insts,
        }
    }

    #[test]
    fn chip_key_separates_topology_placement_and_budget() {
        let base = point(2, 1000);
        assert_eq!(base.key(), point(2, 1000).key(), "deterministic");
        assert_ne!(base.key(), point(4, 1000).key(), "core count participates");
        assert_ne!(base.key(), point(2, 999).key(), "budget participates");
        let mut banks = point(2, 1000);
        banks.chip.llc_banks += 1;
        assert_ne!(base.key(), banks.key(), "chip topology participates");
        let mut swapped = point(2, 1000);
        swapped.slots.swap(0, 1);
        assert_ne!(base.key(), swapped.key(), "placement order participates");
        assert_ne!(
            chip_core_key(base.key(), 0),
            chip_core_key(base.key(), 1),
            "per-core records never collide"
        );
        assert_ne!(chip_core_key(base.key(), 0), base.key());
    }

    #[test]
    fn chip_point_round_trips_through_the_store() {
        let (dir, store) = tmp_store("roundtrip");
        let p = point(2, 400);
        assert!(!p.present(&store));
        assert!(p.load(&store).is_none());

        let run = SimExecutor
            .execute(&p, &ExecCtx { attempt: 0, stop: vr_core::StopFlag::new(), chip_threads: 1 })
            .expect("chip runs");
        assert_eq!(run.per_core.len(), 2);
        p.save(&store, &run).expect("saves");
        assert!(p.present(&store));
        assert_eq!(p.load(&store), Some(run.clone()));

        // Losing one per-core record degrades to a miss, not a torn
        // partial result.
        let core0 = store.records_dir().join(format!("{}.json", chip_core_key(p.key(), 0).hex()));
        std::fs::remove_file(&core0).unwrap();
        assert!(p.load(&store).is_none());
        assert!(!p.present(&store));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chip_points_drive_through_the_generic_engine_and_resume() {
        let (dir, store) = tmp_store("engine");
        let points = vec![point(1, 300), point(2, 300)];
        let cfg = EngineConfig { threads: 1, ..EngineConfig::default() };
        let out = run_campaign(&points, &store, &SimExecutor, &cfg, &CancelToken::new(), None);
        assert_eq!((out.computed, out.cache_hits), (2, 0));
        assert!(out.poisoned.is_empty() && out.failed.is_empty());

        let again = run_campaign(&points, &store, &SimExecutor, &cfg, &CancelToken::new(), None);
        assert_eq!((again.computed, again.cache_hits), (0, 2), "resume is pure cache hits");

        // The store stays maintainable with chip records present.
        let rep = store.verify().unwrap();
        assert!(rep.clean(), "{rep:?}");
        assert_eq!(rep.ok, 3 + 2, "3 per-core records + 2 chip records");
        std::fs::remove_dir_all(&dir).ok();
    }
}
