//! Chaos suite (`--features chaos`): drives real campaigns against a
//! store whose filesystem is deterministically sabotaged, and proves
//! the durability claims the module docs make:
//!
//! * any crash interleaving leaves the store recoverable — `gc` +
//!   `verify` come back clean and a re-run converges to byte-identical
//!   records;
//! * no injected fault (torn write, rename failure, bit flip, ENOSPC)
//!   ever panics the caller — the worst case is recomputation;
//! * the whole fault schedule is a pure function of the seed.
//!
//! Every campaign here runs single-threaded: determinism of the fault
//! schedule requires a deterministic operation order.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vr_campaign::chaos::ChaosConfig;
use vr_campaign::{
    run_campaign, CampaignOutcome, CampaignPoint, CancelToken, EngineConfig, ResultStore,
    SimExecutor,
};
use vr_core::{CoreConfig, RunaheadConfig};
use vr_mem::MemConfig;
use vr_workloads::{hpcdb, Scale};

/// Scratch stores live under `VR_CHAOS_DIR` when set (the CI chaos
/// job points it inside the workspace and uploads it on failure, so a
/// red run ships the exact sabotaged store + quarantine for
/// post-mortem), else under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let root = std::env::var_os("VR_CHAOS_DIR").map_or_else(std::env::temp_dir, PathBuf::from);
    let dir = root.join(format!(
        "vr-chaos-it-{tag}-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Keeps the store for post-mortem when `VR_CHAOS_DIR` is set.
fn cleanup(dir: &Path) {
    if std::env::var_os("VR_CHAOS_DIR").is_none() {
        fs::remove_dir_all(dir).ok();
    }
}

fn points() -> Vec<CampaignPoint> {
    (0..4)
        .map(|i| CampaignPoint {
            label: format!("kangaroo/{i}"),
            workload: Arc::new(hpcdb::kangaroo(Scale::Test)),
            core: CoreConfig::table1(),
            mem: MemConfig::tiny_for_tests(),
            ra: RunaheadConfig::none(),
            max_insts: 900 + i,
        })
        .collect()
}

fn run(points: &[CampaignPoint], store: &ResultStore) -> CampaignOutcome {
    let cfg = EngineConfig {
        threads: 1,
        backoff_base: Duration::ZERO,
        backoff_cap: Duration::ZERO,
        ..EngineConfig::default()
    };
    run_campaign(points, store, &SimExecutor, &cfg, &CancelToken::new(), None)
}

/// All published records as (name, bytes), sorted — the byte-identity
/// currency of every convergence assertion below (the shared helper,
/// unwrapped: a scratch store that cannot be read is a test failure).
fn snapshot_records(root: &Path) -> Vec<(String, Vec<u8>)> {
    vr_campaign::snapshot_records(root).unwrap()
}

/// The ground truth: the records a fault-free campaign produces.
fn baseline() -> Vec<(String, Vec<u8>)> {
    let dir = scratch("baseline");
    let store = ResultStore::open(&dir).unwrap();
    assert!(run(&points(), &store).complete());
    let snap = snapshot_records(&dir);
    assert_eq!(snap.len(), 4);
    fs::remove_dir_all(&dir).ok();
    snap
}

/// After any chaos run: reopen WITHOUT chaos (the dead process is
/// gone), reclaim, and re-run until the store equals the baseline.
fn recover_and_check(dir: &Path, truth: &[(String, Vec<u8>)], ctx: &str) {
    let store = ResultStore::open(dir).unwrap();
    // The killed process cannot still be writing: zero age gate.
    store.gc_with_tmp_age(Duration::ZERO).unwrap();
    let rep = store.verify().unwrap();
    assert!(rep.clean(), "{ctx}: store not clean after gc: {rep:?}");
    let out = run(&points(), &store);
    assert!(out.complete(), "{ctx}: recovery run incomplete: {out:?}");
    assert_eq!(snapshot_records(dir), truth, "{ctx}: records not byte-identical");
    let rep = store.verify().unwrap();
    assert_eq!(rep.ok, 4, "{ctx}");
    assert!(rep.clean(), "{ctx}");
}

/// How many mutating fs ops (writes, renames, removes) one fault-free
/// campaign performs — the schedule length the crash matrix walks.
fn count_mutating_ops() -> u64 {
    let dir = scratch("opcount");
    let store = ResultStore::open_with_chaos(&dir, ChaosConfig::quiet()).unwrap();
    assert!(run(&points(), &store).complete());
    let ops = store.chaos_counters().unwrap().mutating_ops;
    fs::remove_dir_all(&dir).ok();
    ops
}

#[test]
fn every_crash_interleaving_is_recoverable() {
    let truth = baseline();
    let ops = count_mutating_ops();
    assert!(ops >= 8, "4 points should take >= 8 mutating ops, got {ops}");
    // Crash before and after every single mutating op the campaign
    // performs (op == ops is the crash-never-fires sanity arm).
    for op in 0..=ops {
        for before in [true, false] {
            let ctx = format!("crash op {op}/{ops} before={before}");
            let dir = scratch(&format!("crash-{op}-{before}"));
            let store =
                ResultStore::open_with_chaos(&dir, ChaosConfig::crash_only(op, before)).unwrap();
            // The campaign itself must survive the dead store: saves
            // fail silently, nothing panics.
            let out = run(&points(), &store);
            assert!(out.complete(), "{ctx}: campaign wedged: {out:?}");
            recover_and_check(&dir, &truth, &ctx);
            cleanup(&dir);
        }
    }
}

#[test]
fn seeded_fault_storms_recover_to_byte_identical_records() {
    let truth = baseline();
    // The CI chaos matrix: >= 8 distinct seeds, each a different mix
    // of torn writes, rename failures, bit flips, ENOSPC and one
    // crash point drawn from the stream.
    for seed in 0..10u64 {
        let ctx = format!("storm seed {seed}");
        let dir = scratch(&format!("storm-{seed}"));
        let store = ResultStore::open_with_chaos(&dir, ChaosConfig::storm(seed, 16)).unwrap();
        let out = run(&points(), &store);
        assert!(out.complete(), "{ctx}: campaign wedged: {out:?}");
        recover_and_check(&dir, &truth, &ctx);
        cleanup(&dir);
    }
}

#[test]
fn bitflip_reads_quarantine_and_recompute_never_panic() {
    let truth = baseline();
    let dir = scratch("bitflip");
    // Populate cleanly first, then read everything back through a
    // store that flips one bit of every read.
    assert!(run(&points(), &ResultStore::open(&dir).unwrap()).complete());
    let store = ResultStore::open_with_chaos(
        &dir,
        ChaosConfig { bitflip_read: 1.0, seed: 42, ..ChaosConfig::quiet() },
    )
    .unwrap();
    let out = run(&points(), &store);
    assert!(out.complete());
    assert_eq!(out.cache_hits, 0, "every flipped read must miss");
    assert_eq!(out.computed, 4, "every point recomputed");
    let c = store.chaos_counters().unwrap();
    assert_eq!(c.bitflips, 4, "one flip per load");

    // The flipped-looking records were quarantined (the reader cannot
    // tell a flipped read from real corruption) and recomputed ones
    // republished; recovery converges as usual.
    let store = ResultStore::open(&dir).unwrap();
    assert!(store.quarantine_backlog().unwrap() >= 4);
    store.gc_with_tmp_age(Duration::ZERO).unwrap();
    recover_and_check(&dir, &truth, "bitflip");
    cleanup(&dir);
}

#[test]
fn full_disk_degrades_to_uncached_and_recovers() {
    let truth = baseline();
    let dir = scratch("enospc");
    let store = ResultStore::open_with_chaos(
        &dir,
        ChaosConfig { enospc: 1.0, seed: 7, ..ChaosConfig::quiet() },
    )
    .unwrap();
    let out = run(&points(), &store);
    assert!(out.complete(), "a full disk must not fail the campaign: {out:?}");
    assert_eq!(out.computed, 4);
    assert_eq!(store.chaos_counters().unwrap().enospc, 4, "every save hit ENOSPC");
    assert_eq!(snapshot_records(&dir), Vec::new(), "nothing could be published");
    assert!(
        ResultStore::open(&dir).unwrap().verify().unwrap().clean(),
        "ENOSPC leaves no partial files behind"
    );
    recover_and_check(&dir, &truth, "enospc");
    cleanup(&dir);
}

#[test]
fn chaos_schedules_are_a_pure_function_of_the_seed() {
    let run_once = |tag: &str| {
        let dir = scratch(tag);
        let store = ResultStore::open_with_chaos(&dir, ChaosConfig::storm(1234, 16)).unwrap();
        let out = run(&points(), &store);
        assert!(out.complete());
        let counters = store.chaos_counters().unwrap();
        let snap = snapshot_records(&dir);
        fs::remove_dir_all(&dir).ok();
        (counters, snap)
    };
    let (ca, sa) = run_once("det-a");
    let (cb, sb) = run_once("det-b");
    assert_eq!(ca, cb, "same seed, same injected faults");
    assert_eq!(sa, sb, "same seed, same surviving records");
}
