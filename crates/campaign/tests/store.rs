//! Integration tests for the result store's durability contract:
//! crash consistency, corruption quarantine, staleness, and the
//! `verify` / `gc` maintenance passes — everything the `--cache` flag
//! and the CI kill-and-resume job lean on.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use vr_campaign::{
    point_key, run_campaign, CampaignPoint, CancelToken, EngineConfig, PointKey, ResultStore,
    SimExecutor, CODE_SALT,
};
use vr_core::{CoreConfig, RunaheadConfig, SimStats};
use vr_mem::MemConfig;
use vr_workloads::{hpcdb, Scale};

fn scratch(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "vr-store-it-{tag}-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn some_key(n: u64) -> PointKey {
    let w = hpcdb::kangaroo(Scale::Test);
    point_key(&w, &CoreConfig::table1(), &MemConfig::tiny_for_tests(), &RunaheadConfig::none(), n)
}

fn some_stats(n: u64) -> SimStats {
    SimStats { cycles: 17 * n + 1, instructions: n, branches: 3, ..SimStats::default() }
}

fn record_path(store: &ResultStore, key: PointKey) -> PathBuf {
    store.records_dir().join(format!("{}.json", key.hex()))
}

#[test]
fn save_load_round_trips_and_counts() {
    let dir = scratch("roundtrip");
    let store = ResultStore::open(&dir).unwrap();
    assert!(store.is_empty().unwrap());

    let (k, s) = (some_key(1), some_stats(1));
    assert_eq!(store.load(k), None, "empty store misses");
    store.save(k, "p1", &s).unwrap();
    assert_eq!(store.load(k), Some(s), "stored record reads back bit-identically");
    assert!(store.contains(k));
    assert_eq!(store.len().unwrap(), 1);

    let c = store.counters();
    assert_eq!((c.hits, c.misses, c.writes), (1, 1, 1));
    assert_eq!((c.stale, c.quarantined), (0, 0));

    // Overwrite with different stats: last save wins (same key should
    // never produce different stats in production, but the store must
    // not corrupt itself if it happens).
    let s2 = some_stats(2);
    store.save(k, "p1", &s2).unwrap();
    assert_eq!(store.load(k), Some(s2));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_record_is_quarantined_and_recomputed_not_a_crash() {
    let dir = scratch("corrupt");
    let store = ResultStore::open(&dir).unwrap();
    let (k, s) = (some_key(2), some_stats(2));
    store.save(k, "p", &s).unwrap();

    // Flip bytes in the middle of the record (checksum now fails).
    let path = record_path(&store, k);
    let mut bytes = fs::read(path.clone()).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 8] {
        *b = b'#';
    }
    fs::write(&path, &bytes).unwrap();

    // The load is a miss, never a panic; the record moves aside.
    assert_eq!(store.load(k), None);
    assert!(!path.exists(), "corrupt record removed from records/");
    assert_eq!(store.counters().quarantined, 1);
    let quarantined: Vec<_> = fs::read_dir(dir.join("quarantine")).unwrap().collect();
    assert_eq!(quarantined.len(), 1, "bytes preserved for diagnosis");

    // Recompute + restore works; the point becomes a hit again.
    store.save(k, "p", &s).unwrap();
    assert_eq!(store.load(k), Some(s));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_corruption_shape_quarantines() {
    let dir = scratch("shapes");
    let store = ResultStore::open(&dir).unwrap();
    let (k, s) = (some_key(3), some_stats(3));
    let cases: &[fn(&str) -> String] = &[
        |_| String::new(),                                   // empty file
        |_| "not json at all {{{".into(),                    // unparseable
        |t| t.replace("vr-resultstore-v1", "vr-other-v9"),   // wrong schema
        |t| t.replace("\"branches\": 3", "\"branches\": 4"), // checksum mismatch
        |t| t.replace("\"cycles\"", "\"cyclez\""),           // field missing -> strict parse fails
    ];
    for (i, mutate) in cases.iter().enumerate() {
        store.save(k, "p", &s).unwrap();
        let path = record_path(&store, k);
        let text = fs::read_to_string(&path).unwrap();
        let mutated = mutate(&text);
        assert_ne!(mutated, text, "case {i} must actually change the record");
        fs::write(&path, mutated).unwrap();
        assert_eq!(store.load(k), None, "case {i} must miss");
        assert!(!path.exists(), "case {i} must quarantine");
    }
    assert_eq!(store.counters().quarantined, cases.len() as u64);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_key_record_is_corrupt_even_if_well_formed() {
    let dir = scratch("wrongkey");
    let store = ResultStore::open(&dir).unwrap();
    let (ka, kb, s) = (some_key(4), some_key(5), some_stats(4));
    store.save(ka, "p", &s).unwrap();
    // Copy a's record into b's filename: embedded key mismatches.
    fs::copy(record_path(&store, ka), record_path(&store, kb)).unwrap();
    assert_eq!(store.load(kb), None);
    assert_eq!(store.counters().quarantined, 1);
    assert_eq!(store.load(ka), Some(s), "the genuine record is untouched");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_salt_is_a_miss_left_in_place_until_gc() {
    let dir = scratch("stale");
    let store = ResultStore::open(&dir).unwrap();
    let (k, s) = (some_key(6), some_stats(6));
    store.save(k, "p", &s).unwrap();

    // Rewrite the record as if an older code version had produced it.
    let path = record_path(&store, k);
    let text = fs::read_to_string(&path).unwrap();
    let old = text.replace(
        &format!("\"salt\": {CODE_SALT}"),
        &format!("\"salt\": {}", CODE_SALT + 1_000_000),
    );
    assert_ne!(old, text, "salt line must exist in the record");
    fs::write(&path, old).unwrap();

    assert_eq!(store.load(k), None, "stale is a miss");
    assert!(path.exists(), "stale records are NOT quarantined");
    let c = store.counters();
    assert_eq!((c.stale, c.quarantined), (1, 0));

    let rep = store.verify().unwrap();
    assert_eq!((rep.ok, rep.stale, rep.quarantined), (0, 1, 0));
    assert!(!rep.clean());

    let gc = store.gc().unwrap();
    assert_eq!(gc.stale_removed, 1);
    assert!(!path.exists(), "gc reclaims stale records");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_writer_leaves_only_a_tmp_file_that_gc_reclaims() {
    let dir = scratch("tornwrite");
    let store = ResultStore::open(&dir).unwrap();
    let (k, s) = (some_key(7), some_stats(7));
    store.save(k, "ok", &s).unwrap();

    // Simulate a writer killed between `write` and `rename`: a tmp
    // file exists, no record was published.
    let orphan = store.records_dir().join(".tmp-99999-0");
    fs::write(&orphan, "{\"half\": true").unwrap();

    // Readers never see the torn write.
    assert_eq!(store.len().unwrap(), 1, "tmp files are not records");
    assert_eq!(store.load(k), Some(s));

    let rep = store.verify().unwrap();
    assert_eq!((rep.ok, rep.tmp_files), (1, 1));
    assert!(!rep.clean());

    // A default gc keeps the fresh tmp file (it could belong to a
    // writer that is alive right now); the zero-age form reclaims it.
    let gc = store.gc().unwrap();
    assert_eq!((gc.tmp_removed, gc.tmp_kept), (0, 1));
    assert!(orphan.exists(), "fresh tmp files survive the age gate");
    let gc = store.gc_with_tmp_age(std::time::Duration::ZERO).unwrap();
    assert_eq!((gc.tmp_removed, gc.kept), (1, 1));
    assert!(!orphan.exists());
    assert!(store.verify().unwrap().clean(), "store is pristine after gc");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn gc_reclaims_quarantine_backlog_and_keeps_valid_records() {
    let dir = scratch("gcall");
    let store = ResultStore::open(&dir).unwrap();
    for n in 0..4 {
        store.save(some_key(10 + n), &format!("p{n}"), &some_stats(n)).unwrap();
    }
    // Corrupt one (quarantined on load), orphan one tmp file.
    let victim = some_key(10);
    fs::write(record_path(&store, victim), "garbage").unwrap();
    assert_eq!(store.load(victim), None);
    fs::write(store.records_dir().join(".tmp-1-1"), "x").unwrap();

    let rep = store.verify().unwrap();
    assert_eq!(rep.ok, 3);
    assert_eq!(rep.quarantine_backlog, 1);
    assert_eq!(rep.tmp_files, 1);

    let gc = store.gc_with_tmp_age(std::time::Duration::ZERO).unwrap();
    assert_eq!(gc.kept, 3);
    assert_eq!(gc.quarantine_removed, 1);
    assert_eq!(gc.tmp_removed, 1);
    assert_eq!(store.len().unwrap(), 3);
    assert!(store.verify().unwrap().clean());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_record_is_recomputed_by_the_engine() {
    // End-to-end acceptance shape: corrupt a record under a real
    // campaign, re-run, and watch it recompute to the identical bytes.
    let dir = scratch("engine-recompute");
    let store = ResultStore::open(&dir).unwrap();
    let p = CampaignPoint {
        label: "kangaroo".into(),
        workload: std::sync::Arc::new(hpcdb::kangaroo(Scale::Test)),
        core: CoreConfig::table1(),
        mem: MemConfig::tiny_for_tests(),
        ra: RunaheadConfig::none(),
        max_insts: 1_500,
    };
    let cfg = EngineConfig { threads: 1, ..EngineConfig::default() };
    let out = run_campaign(
        std::slice::from_ref(&p),
        &store,
        &SimExecutor,
        &cfg,
        &CancelToken::new(),
        None,
    );
    assert!(out.complete());
    let path = record_path(&store, p.key());
    let pristine = fs::read(&path).unwrap();

    fs::write(&path, b"}{ totally broken").unwrap();
    let out2 = run_campaign(
        std::slice::from_ref(&p),
        &store,
        &SimExecutor,
        &cfg,
        &CancelToken::new(),
        None,
    );
    assert!(out2.complete());
    assert_eq!(out2.computed, 1, "corrupt record recomputed, not trusted");
    assert_eq!(fs::read(&path).unwrap(), pristine, "recomputation is byte-identical");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_preserves_the_original_bytes_verbatim() {
    let dir = scratch("qbytes");
    let store = ResultStore::open(&dir).unwrap();
    let (k, s) = (some_key(20), some_stats(20));
    store.save(k, "p", &s).unwrap();

    // Corrupt the record and keep the exact corrupted bytes.
    let path = record_path(&store, k);
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    fs::write(&path, &bytes).unwrap();

    assert_eq!(store.load(k), None);
    let mut q: Vec<_> =
        fs::read_dir(dir.join("quarantine")).unwrap().filter_map(Result::ok).collect();
    assert_eq!(q.len(), 1);
    let moved = q.pop().unwrap();
    assert_eq!(
        fs::read(moved.path()).unwrap(),
        bytes,
        "quarantine must preserve the evidence byte-for-byte"
    );
    // The quarantine name keeps the original record name as a prefix.
    let qname = moved.file_name().to_string_lossy().into_owned();
    assert!(qname.starts_with(&format!("{}.json.", k.hex())), "got {qname}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_verify_passes_report_a_stable_quarantine_backlog() {
    let dir = scratch("qstable");
    let store = ResultStore::open(&dir).unwrap();
    store.save(some_key(21), "ok", &some_stats(21)).unwrap();
    let victim = some_key(22);
    store.save(victim, "bad", &some_stats(22)).unwrap();
    fs::write(record_path(&store, victim), "garbage").unwrap();

    let first = store.verify().unwrap();
    assert_eq!((first.ok, first.quarantined, first.quarantine_backlog), (1, 1, 1));

    // Verify is idempotent on an unchanged store: nothing new is
    // quarantined and the backlog it reports does not drift.
    for pass in 0..3 {
        let rep = store.verify().unwrap();
        assert_eq!(rep.ok, 1, "pass {pass}");
        assert_eq!(rep.quarantined, 0, "pass {pass}: no new corruption");
        assert_eq!(rep.quarantine_backlog, 1, "pass {pass}: backlog stable");
        assert_eq!(store.quarantine_backlog().unwrap(), 1, "pass {pass}");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn gc_racing_a_live_writer_never_loses_a_publish() {
    // Regression for the tmp-reclaim race: a gc pass sweeping while a
    // writer sits between `write(tmp)` and `rename(tmp, record)` used
    // to delete the tmp file and fail the publish. The age gate keeps
    // young tmp files out of gc's reach.
    let dir = scratch("gcrace");
    let store = ResultStore::open(&dir).unwrap();
    let n = 200u64;
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            for i in 0..n {
                store.save(some_key(100 + i), "raced", &some_stats(i)).unwrap();
            }
        });
        // Hammer gc (default grace) the whole time the writer runs.
        while !writer.is_finished() {
            store.gc().unwrap();
        }
        writer.join().unwrap();
    });
    assert_eq!(store.len().unwrap(), n as usize, "every racing publish survived gc");
    for i in 0..n {
        assert_eq!(store.load(some_key(100 + i)), Some(some_stats(i)), "record {i}");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn poison_round_trips_and_gc_clears_it() {
    let dir = scratch("poison");
    let store = ResultStore::open(&dir).unwrap();
    let rec = vr_campaign::PoisonRecord {
        key: some_key(30),
        label: "kangaroo/none".into(),
        error: "wall-clock deadline expired (twice)".into(),
        attempts: 3,
        deadline_trips: 2,
    };
    assert!(!store.is_poisoned(rec.key));
    store.poison(&rec).unwrap();
    assert!(store.is_poisoned(rec.key));
    assert_eq!(store.load_poison(rec.key), Some(rec.clone()), "poison round-trips exactly");
    assert_eq!(store.poison_list().unwrap(), vec![rec.clone()]);

    // Poison is deliberate state: verify counts it but stays clean.
    let rep = store.verify().unwrap();
    assert_eq!(rep.poisoned, 1);
    assert!(rep.clean());

    // gc is the retry lever: it clears poison, the point runs again.
    let gc = store.gc().unwrap();
    assert_eq!(gc.poison_removed, 1);
    assert!(!store.is_poisoned(rec.key));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_poison_is_quarantined_and_the_point_runs_again() {
    let dir = scratch("poison-corrupt");
    let store = ResultStore::open(&dir).unwrap();
    let rec = vr_campaign::PoisonRecord {
        key: some_key(31),
        label: "p".into(),
        error: "e".into(),
        attempts: 1,
        deadline_trips: 0,
    };
    store.poison(&rec).unwrap();
    let path = dir.join("poison").join(format!("{}.json", rec.key.hex()));
    fs::write(&path, "{ definitely not a poison record").unwrap();
    assert!(!store.is_poisoned(rec.key), "corrupt poison must not mask the point");
    assert!(!path.exists(), "corrupt poison record moved aside");
    assert_eq!(store.quarantine_backlog().unwrap(), 1);

    // Stale-salt poison (from an older code version) is also ignored,
    // but left in place for gc rather than quarantined.
    store.poison(&rec).unwrap();
    let text = fs::read_to_string(&path).unwrap();
    let old =
        text.replace(&format!("\"salt\": {CODE_SALT}"), &format!("\"salt\": {}", CODE_SALT + 7));
    assert_ne!(old, text);
    fs::write(&path, old).unwrap();
    assert!(!store.is_poisoned(rec.key));
    assert!(path.exists(), "stale poison is left for gc");
    assert_eq!(store.gc().unwrap().poison_removed, 1);
    fs::remove_dir_all(&dir).ok();
}
